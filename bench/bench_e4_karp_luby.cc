// E4 — Theorem 5.2: the Karp-Luby FPTRAS vs naive Monte Carlo.
//
// Claim: Karp-Luby achieves bounded *relative* error with a sample budget
// polynomial in the number of terms — independently of how small Pr[φ]
// is — while naive Monte Carlo needs ≈ 1/Pr[φ] samples to see a single
// hit. Expected shape: at equal sample budget, the naive estimator's
// relative error diverges as the event probability drops toward 2^-k (it
// typically reports 0), while Karp-Luby's stays ≈ flat.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include <benchmark/benchmark.h>

#include "qrel/propositional/exact.h"
#include "qrel/propositional/karp_luby.h"
#include "qrel/propositional/naive_mc.h"
#include "qrel/util/snapshot.h"

namespace {

// Optimization sink: keeps results alive without the
// DoNotOptimize asm-constraint issues seen with older
// google-benchmark builds.
volatile double qrel_bench_sink = 0.0;

std::vector<qrel::Rational> Uniform(int n) {
  return std::vector<qrel::Rational>(static_cast<size_t>(n),
                                     qrel::Rational::Half());
}

// A "rare event" DNF: three overlapping wide conjunctions over k variables;
// Pr ≈ 3·2^-k.
qrel::Dnf RareEventDnf(int k) {
  qrel::Dnf dnf(k + 2);
  for (int t = 0; t < 3; ++t) {
    std::vector<qrel::PropLiteral> term;
    for (int v = 0; v < k; ++v) {
      term.push_back({v, true});
    }
    term.push_back({k + (t % 2), t < 2});
    dnf.AddTerm(std::move(term));
  }
  return dnf;
}

constexpr uint64_t kBudget = 50000;

void BM_E4_KarpLubyRareEvent(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  qrel::Dnf dnf = RareEventDnf(k);
  std::vector<qrel::Rational> prob = Uniform(dnf.variable_count());
  double exact = qrel::ShannonDnfProbability(dnf, prob).ToDouble();
  qrel::KarpLubyOptions options;
  options.fixed_samples = kBudget;
  options.seed = 17;
  double estimate = 0;
  for (auto _ : state) {
    estimate = qrel::KarpLubyProbability(dnf, prob, options)->estimate;
    qrel_bench_sink = static_cast<double>(estimate);
  }
  state.counters["k"] = k;
  state.counters["exact"] = exact;
  state.counters["rel_err"] =
      exact > 0 ? std::fabs(estimate - exact) / exact : 0.0;
}
BENCHMARK(BM_E4_KarpLubyRareEvent)->DenseRange(4, 24, 4)
    ->Unit(benchmark::kMillisecond);

void BM_E4_NaiveMcRareEvent(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  qrel::Dnf dnf = RareEventDnf(k);
  std::vector<qrel::Rational> prob = Uniform(dnf.variable_count());
  double exact = qrel::ShannonDnfProbability(dnf, prob).ToDouble();
  double estimate = 0;
  for (auto _ : state) {
    estimate = qrel::NaiveMcProbability(dnf, prob, kBudget, 17)->estimate;
    qrel_bench_sink = static_cast<double>(estimate);
  }
  state.counters["k"] = k;
  state.counters["exact"] = exact;
  state.counters["rel_err"] =
      exact > 0 ? std::fabs(estimate - exact) / exact : 0.0;
}
BENCHMARK(BM_E4_NaiveMcRareEvent)->DenseRange(4, 24, 4)
    ->Unit(benchmark::kMillisecond);

// Convergence on a garden-variety random kDNF: relative error vs samples.
void BM_E4_KarpLubyConvergence(benchmark::State& state) {
  uint64_t samples = static_cast<uint64_t>(state.range(0));
  qrel::Rng rng(5);
  qrel::Dnf dnf(16);
  for (int t = 0; t < 12; ++t) {
    std::vector<qrel::PropLiteral> term;
    for (int l = 0; l < 3; ++l) {
      term.push_back({static_cast<int>(rng.NextBelow(16)),
                      rng.NextBernoulli(0.5)});
    }
    dnf.AddTerm(std::move(term));
  }
  std::vector<qrel::Rational> prob = Uniform(16);
  double exact = qrel::ShannonDnfProbability(dnf, prob).ToDouble();
  qrel::KarpLubyOptions options;
  options.fixed_samples = samples;
  options.seed = 23;
  double estimate = 0;
  for (auto _ : state) {
    estimate = qrel::KarpLubyProbability(dnf, prob, options)->estimate;
    qrel_bench_sink = static_cast<double>(estimate);
  }
  state.counters["samples"] = static_cast<double>(samples);
  state.counters["rel_err"] = std::fabs(estimate - exact) / exact;
}
BENCHMARK(BM_E4_KarpLubyConvergence)->RangeMultiplier(4)->Range(256, 262144);

// Estimator ablation: canonical vs coverage at equal budget.
void BM_E4_EstimatorAblation(benchmark::State& state) {
  bool coverage = state.range(0) == 1;
  qrel::Rng rng(6);
  qrel::Dnf dnf(20);
  for (int t = 0; t < 20; ++t) {
    std::vector<qrel::PropLiteral> term;
    for (int l = 0; l < 3; ++l) {
      term.push_back({static_cast<int>(rng.NextBelow(20)),
                      rng.NextBernoulli(0.5)});
    }
    dnf.AddTerm(std::move(term));
  }
  std::vector<qrel::Rational> prob = Uniform(20);
  double exact = qrel::ShannonDnfProbability(dnf, prob).ToDouble();
  qrel::KarpLubyOptions options;
  options.fixed_samples = 20000;
  options.seed = 31;
  options.estimator = coverage ? qrel::KarpLubyOptions::Estimator::kCoverage
                               : qrel::KarpLubyOptions::Estimator::kCanonical;
  double estimate = 0;
  for (auto _ : state) {
    estimate = qrel::KarpLubyProbability(dnf, prob, options)->estimate;
    qrel_bench_sink = static_cast<double>(estimate);
  }
  state.counters["coverage"] = coverage ? 1 : 0;
  state.counters["rel_err"] = std::fabs(estimate - exact) / exact;
}
BENCHMARK(BM_E4_EstimatorAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Checkpoint overhead: the identical Karp-Luby run bare (arg 0), with a
// crash-safe checkpointer at the qrel_cli default interval of 100 ms
// (arg 1), and at a pathological 1 ms interval (arg 2) that forces dozens
// of atomic write+fsync cycles — the per-snapshot cost EXPERIMENTS.md
// records. The interval gate itself is two compares per sample, so arg 1
// must stay well under 5% over arg 0.
void BM_E4_CheckpointOverhead(benchmark::State& state) {
  bool checkpointed = state.range(0) != 0;
  int interval_ms = state.range(0) == 2 ? 1 : 100;
  qrel::Dnf dnf = RareEventDnf(16);
  std::vector<qrel::Rational> prob = Uniform(dnf.variable_count());
  qrel::KarpLubyOptions options;
  options.fixed_samples = kBudget;
  options.seed = 17;
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                     "/qrel_bench_e4_checkpoint.snapshot";
  double estimate = 0;
  uint64_t writes = 0;
  for (auto _ : state) {
    qrel::RunContext ctx;
    std::optional<qrel::Checkpointer> checkpointer;
    if (checkpointed) {
      checkpointer.emplace(path, std::chrono::milliseconds(interval_ms));
      ctx.SetCheckpointer(&*checkpointer);
    }
    options.run_context = &ctx;
    estimate = qrel::KarpLubyProbability(dnf, prob, options)->estimate;
    qrel_bench_sink = static_cast<double>(estimate);
    if (checkpointer.has_value()) {
      writes += checkpointer->writes();
    }
  }
  std::remove(path.c_str());
  state.counters["checkpointed"] = checkpointed ? 1 : 0;
  state.counters["snapshots"] = static_cast<double>(writes);
}
BENCHMARK(BM_E4_CheckpointOverhead)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
