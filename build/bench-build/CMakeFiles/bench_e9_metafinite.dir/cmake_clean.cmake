file(REMOVE_RECURSE
  "../bench/bench_e9_metafinite"
  "../bench/bench_e9_metafinite.pdb"
  "CMakeFiles/bench_e9_metafinite.dir/bench_e9_metafinite.cc.o"
  "CMakeFiles/bench_e9_metafinite.dir/bench_e9_metafinite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_metafinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
