# Empty compiler generated dependencies file for bench_e1_qf_poly.
# This may be replaced when dependencies are built.
