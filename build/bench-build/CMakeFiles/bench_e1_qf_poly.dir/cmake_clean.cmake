file(REMOVE_RECURSE
  "../bench/bench_e1_qf_poly"
  "../bench/bench_e1_qf_poly.pdb"
  "CMakeFiles/bench_e1_qf_poly.dir/bench_e1_qf_poly.cc.o"
  "CMakeFiles/bench_e1_qf_poly.dir/bench_e1_qf_poly.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_qf_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
