# Empty compiler generated dependencies file for bench_e8_kdnf_reduction.
# This may be replaced when dependencies are built.
