file(REMOVE_RECURSE
  "../bench/bench_e8_kdnf_reduction"
  "../bench/bench_e8_kdnf_reduction.pdb"
  "CMakeFiles/bench_e8_kdnf_reduction.dir/bench_e8_kdnf_reduction.cc.o"
  "CMakeFiles/bench_e8_kdnf_reduction.dir/bench_e8_kdnf_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_kdnf_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
