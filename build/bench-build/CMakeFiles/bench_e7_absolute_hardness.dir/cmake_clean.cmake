file(REMOVE_RECURSE
  "../bench/bench_e7_absolute_hardness"
  "../bench/bench_e7_absolute_hardness.pdb"
  "CMakeFiles/bench_e7_absolute_hardness.dir/bench_e7_absolute_hardness.cc.o"
  "CMakeFiles/bench_e7_absolute_hardness.dir/bench_e7_absolute_hardness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_absolute_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
