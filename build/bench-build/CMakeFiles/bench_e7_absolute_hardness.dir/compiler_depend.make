# Empty compiler generated dependencies file for bench_e7_absolute_hardness.
# This may be replaced when dependencies are built.
