# Empty dependencies file for bench_e2_hardness.
# This may be replaced when dependencies are built.
