file(REMOVE_RECURSE
  "../bench/bench_e6_absolute"
  "../bench/bench_e6_absolute.pdb"
  "CMakeFiles/bench_e6_absolute.dir/bench_e6_absolute.cc.o"
  "CMakeFiles/bench_e6_absolute.dir/bench_e6_absolute.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_absolute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
