# Empty dependencies file for bench_e6_absolute.
# This may be replaced when dependencies are built.
