file(REMOVE_RECURSE
  "../bench/bench_e5_fptras"
  "../bench/bench_e5_fptras.pdb"
  "CMakeFiles/bench_e5_fptras.dir/bench_e5_fptras.cc.o"
  "CMakeFiles/bench_e5_fptras.dir/bench_e5_fptras.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_fptras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
