file(REMOVE_RECURSE
  "../bench/bench_e11_datalog"
  "../bench/bench_e11_datalog.pdb"
  "CMakeFiles/bench_e11_datalog.dir/bench_e11_datalog.cc.o"
  "CMakeFiles/bench_e11_datalog.dir/bench_e11_datalog.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
