# Empty compiler generated dependencies file for bench_e11_datalog.
# This may be replaced when dependencies are built.
