file(REMOVE_RECURSE
  "../bench/bench_e10_engine"
  "../bench/bench_e10_engine.pdb"
  "CMakeFiles/bench_e10_engine.dir/bench_e10_engine.cc.o"
  "CMakeFiles/bench_e10_engine.dir/bench_e10_engine.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
