# Empty dependencies file for bench_e10_engine.
# This may be replaced when dependencies are built.
