
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e10_engine.cc" "bench-build/CMakeFiles/bench_e10_engine.dir/bench_e10_engine.cc.o" "gcc" "bench-build/CMakeFiles/bench_e10_engine.dir/bench_e10_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qrel_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_metafinite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_propositional.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
