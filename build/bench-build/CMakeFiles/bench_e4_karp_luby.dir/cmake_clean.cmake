file(REMOVE_RECURSE
  "../bench/bench_e4_karp_luby"
  "../bench/bench_e4_karp_luby.pdb"
  "CMakeFiles/bench_e4_karp_luby.dir/bench_e4_karp_luby.cc.o"
  "CMakeFiles/bench_e4_karp_luby.dir/bench_e4_karp_luby.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_karp_luby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
