# Empty dependencies file for bench_e4_karp_luby.
# This may be replaced when dependencies are built.
