file(REMOVE_RECURSE
  "../bench/bench_e3_exact"
  "../bench/bench_e3_exact.pdb"
  "CMakeFiles/bench_e3_exact.dir/bench_e3_exact.cc.o"
  "CMakeFiles/bench_e3_exact.dir/bench_e3_exact.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
