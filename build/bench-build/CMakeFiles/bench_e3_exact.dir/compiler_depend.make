# Empty compiler generated dependencies file for bench_e3_exact.
# This may be replaced when dependencies are built.
