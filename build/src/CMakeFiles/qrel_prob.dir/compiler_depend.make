# Empty compiler generated dependencies file for qrel_prob.
# This may be replaced when dependencies are built.
