file(REMOVE_RECURSE
  "libqrel_prob.a"
)
