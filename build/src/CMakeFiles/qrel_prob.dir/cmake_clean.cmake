file(REMOVE_RECURSE
  "CMakeFiles/qrel_prob.dir/qrel/prob/error_model.cc.o"
  "CMakeFiles/qrel_prob.dir/qrel/prob/error_model.cc.o.d"
  "CMakeFiles/qrel_prob.dir/qrel/prob/text_format.cc.o"
  "CMakeFiles/qrel_prob.dir/qrel/prob/text_format.cc.o.d"
  "CMakeFiles/qrel_prob.dir/qrel/prob/unreliable_database.cc.o"
  "CMakeFiles/qrel_prob.dir/qrel/prob/unreliable_database.cc.o.d"
  "CMakeFiles/qrel_prob.dir/qrel/prob/world.cc.o"
  "CMakeFiles/qrel_prob.dir/qrel/prob/world.cc.o.d"
  "libqrel_prob.a"
  "libqrel_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
