
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qrel/prob/error_model.cc" "src/CMakeFiles/qrel_prob.dir/qrel/prob/error_model.cc.o" "gcc" "src/CMakeFiles/qrel_prob.dir/qrel/prob/error_model.cc.o.d"
  "/root/repo/src/qrel/prob/text_format.cc" "src/CMakeFiles/qrel_prob.dir/qrel/prob/text_format.cc.o" "gcc" "src/CMakeFiles/qrel_prob.dir/qrel/prob/text_format.cc.o.d"
  "/root/repo/src/qrel/prob/unreliable_database.cc" "src/CMakeFiles/qrel_prob.dir/qrel/prob/unreliable_database.cc.o" "gcc" "src/CMakeFiles/qrel_prob.dir/qrel/prob/unreliable_database.cc.o.d"
  "/root/repo/src/qrel/prob/world.cc" "src/CMakeFiles/qrel_prob.dir/qrel/prob/world.cc.o" "gcc" "src/CMakeFiles/qrel_prob.dir/qrel/prob/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qrel_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
