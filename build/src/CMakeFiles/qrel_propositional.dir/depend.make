# Empty dependencies file for qrel_propositional.
# This may be replaced when dependencies are built.
