
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qrel/propositional/dnf.cc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/dnf.cc.o" "gcc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/dnf.cc.o.d"
  "/root/repo/src/qrel/propositional/exact.cc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/exact.cc.o" "gcc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/exact.cc.o.d"
  "/root/repo/src/qrel/propositional/karp_luby.cc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/karp_luby.cc.o" "gcc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/karp_luby.cc.o.d"
  "/root/repo/src/qrel/propositional/kdnf_reduction.cc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/kdnf_reduction.cc.o" "gcc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/kdnf_reduction.cc.o.d"
  "/root/repo/src/qrel/propositional/naive_mc.cc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/naive_mc.cc.o" "gcc" "src/CMakeFiles/qrel_propositional.dir/qrel/propositional/naive_mc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qrel_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
