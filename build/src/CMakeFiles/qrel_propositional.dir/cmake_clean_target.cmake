file(REMOVE_RECURSE
  "libqrel_propositional.a"
)
