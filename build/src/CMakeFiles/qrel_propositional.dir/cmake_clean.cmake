file(REMOVE_RECURSE
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/dnf.cc.o"
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/dnf.cc.o.d"
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/exact.cc.o"
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/exact.cc.o.d"
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/karp_luby.cc.o"
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/karp_luby.cc.o.d"
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/kdnf_reduction.cc.o"
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/kdnf_reduction.cc.o.d"
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/naive_mc.cc.o"
  "CMakeFiles/qrel_propositional.dir/qrel/propositional/naive_mc.cc.o.d"
  "libqrel_propositional.a"
  "libqrel_propositional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_propositional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
