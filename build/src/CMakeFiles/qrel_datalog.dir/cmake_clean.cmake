file(REMOVE_RECURSE
  "CMakeFiles/qrel_datalog.dir/qrel/datalog/eval.cc.o"
  "CMakeFiles/qrel_datalog.dir/qrel/datalog/eval.cc.o.d"
  "CMakeFiles/qrel_datalog.dir/qrel/datalog/program.cc.o"
  "CMakeFiles/qrel_datalog.dir/qrel/datalog/program.cc.o.d"
  "CMakeFiles/qrel_datalog.dir/qrel/datalog/reliability.cc.o"
  "CMakeFiles/qrel_datalog.dir/qrel/datalog/reliability.cc.o.d"
  "libqrel_datalog.a"
  "libqrel_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
