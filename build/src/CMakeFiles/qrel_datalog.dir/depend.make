# Empty dependencies file for qrel_datalog.
# This may be replaced when dependencies are built.
