file(REMOVE_RECURSE
  "libqrel_datalog.a"
)
