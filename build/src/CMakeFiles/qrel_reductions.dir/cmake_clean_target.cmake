file(REMOVE_RECURSE
  "libqrel_reductions.a"
)
