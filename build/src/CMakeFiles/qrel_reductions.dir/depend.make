# Empty dependencies file for qrel_reductions.
# This may be replaced when dependencies are built.
