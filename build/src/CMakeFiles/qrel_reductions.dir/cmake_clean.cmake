file(REMOVE_RECURSE
  "CMakeFiles/qrel_reductions.dir/qrel/reductions/four_coloring.cc.o"
  "CMakeFiles/qrel_reductions.dir/qrel/reductions/four_coloring.cc.o.d"
  "CMakeFiles/qrel_reductions.dir/qrel/reductions/monotone_two_sat.cc.o"
  "CMakeFiles/qrel_reductions.dir/qrel/reductions/monotone_two_sat.cc.o.d"
  "libqrel_reductions.a"
  "libqrel_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
