file(REMOVE_RECURSE
  "CMakeFiles/qrel_core.dir/qrel/core/absolute.cc.o"
  "CMakeFiles/qrel_core.dir/qrel/core/absolute.cc.o.d"
  "CMakeFiles/qrel_core.dir/qrel/core/approx.cc.o"
  "CMakeFiles/qrel_core.dir/qrel/core/approx.cc.o.d"
  "CMakeFiles/qrel_core.dir/qrel/core/reliability.cc.o"
  "CMakeFiles/qrel_core.dir/qrel/core/reliability.cc.o.d"
  "libqrel_core.a"
  "libqrel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
