# Empty dependencies file for qrel_core.
# This may be replaced when dependencies are built.
