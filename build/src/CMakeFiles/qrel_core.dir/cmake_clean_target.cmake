file(REMOVE_RECURSE
  "libqrel_core.a"
)
