
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qrel/logic/ast.cc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/ast.cc.o" "gcc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/ast.cc.o.d"
  "/root/repo/src/qrel/logic/classify.cc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/classify.cc.o" "gcc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/classify.cc.o.d"
  "/root/repo/src/qrel/logic/eval.cc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/eval.cc.o" "gcc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/eval.cc.o.d"
  "/root/repo/src/qrel/logic/grounding.cc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/grounding.cc.o" "gcc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/grounding.cc.o.d"
  "/root/repo/src/qrel/logic/normal_form.cc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/normal_form.cc.o" "gcc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/normal_form.cc.o.d"
  "/root/repo/src/qrel/logic/parser.cc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/parser.cc.o" "gcc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/parser.cc.o.d"
  "/root/repo/src/qrel/logic/second_order.cc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/second_order.cc.o" "gcc" "src/CMakeFiles/qrel_logic.dir/qrel/logic/second_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qrel_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
