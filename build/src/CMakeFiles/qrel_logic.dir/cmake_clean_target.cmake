file(REMOVE_RECURSE
  "libqrel_logic.a"
)
