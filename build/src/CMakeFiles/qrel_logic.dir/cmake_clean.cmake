file(REMOVE_RECURSE
  "CMakeFiles/qrel_logic.dir/qrel/logic/ast.cc.o"
  "CMakeFiles/qrel_logic.dir/qrel/logic/ast.cc.o.d"
  "CMakeFiles/qrel_logic.dir/qrel/logic/classify.cc.o"
  "CMakeFiles/qrel_logic.dir/qrel/logic/classify.cc.o.d"
  "CMakeFiles/qrel_logic.dir/qrel/logic/eval.cc.o"
  "CMakeFiles/qrel_logic.dir/qrel/logic/eval.cc.o.d"
  "CMakeFiles/qrel_logic.dir/qrel/logic/grounding.cc.o"
  "CMakeFiles/qrel_logic.dir/qrel/logic/grounding.cc.o.d"
  "CMakeFiles/qrel_logic.dir/qrel/logic/normal_form.cc.o"
  "CMakeFiles/qrel_logic.dir/qrel/logic/normal_form.cc.o.d"
  "CMakeFiles/qrel_logic.dir/qrel/logic/parser.cc.o"
  "CMakeFiles/qrel_logic.dir/qrel/logic/parser.cc.o.d"
  "CMakeFiles/qrel_logic.dir/qrel/logic/second_order.cc.o"
  "CMakeFiles/qrel_logic.dir/qrel/logic/second_order.cc.o.d"
  "libqrel_logic.a"
  "libqrel_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
