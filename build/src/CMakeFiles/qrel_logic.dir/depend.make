# Empty dependencies file for qrel_logic.
# This may be replaced when dependencies are built.
