# Empty dependencies file for qrel_engine.
# This may be replaced when dependencies are built.
