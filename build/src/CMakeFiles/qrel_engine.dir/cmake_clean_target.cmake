file(REMOVE_RECURSE
  "libqrel_engine.a"
)
