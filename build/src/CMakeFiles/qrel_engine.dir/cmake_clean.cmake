file(REMOVE_RECURSE
  "CMakeFiles/qrel_engine.dir/qrel/engine/engine.cc.o"
  "CMakeFiles/qrel_engine.dir/qrel/engine/engine.cc.o.d"
  "libqrel_engine.a"
  "libqrel_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
