file(REMOVE_RECURSE
  "libqrel_util.a"
)
