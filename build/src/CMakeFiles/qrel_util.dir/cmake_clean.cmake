file(REMOVE_RECURSE
  "CMakeFiles/qrel_util.dir/qrel/util/bigint.cc.o"
  "CMakeFiles/qrel_util.dir/qrel/util/bigint.cc.o.d"
  "CMakeFiles/qrel_util.dir/qrel/util/rational.cc.o"
  "CMakeFiles/qrel_util.dir/qrel/util/rational.cc.o.d"
  "CMakeFiles/qrel_util.dir/qrel/util/status.cc.o"
  "CMakeFiles/qrel_util.dir/qrel/util/status.cc.o.d"
  "libqrel_util.a"
  "libqrel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
