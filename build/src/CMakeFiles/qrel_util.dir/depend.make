# Empty dependencies file for qrel_util.
# This may be replaced when dependencies are built.
