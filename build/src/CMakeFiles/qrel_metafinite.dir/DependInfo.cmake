
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qrel/metafinite/functional_database.cc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/functional_database.cc.o" "gcc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/functional_database.cc.o.d"
  "/root/repo/src/qrel/metafinite/relational_bridge.cc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/relational_bridge.cc.o" "gcc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/relational_bridge.cc.o.d"
  "/root/repo/src/qrel/metafinite/reliability.cc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/reliability.cc.o" "gcc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/reliability.cc.o.d"
  "/root/repo/src/qrel/metafinite/term.cc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/term.cc.o" "gcc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/term.cc.o.d"
  "/root/repo/src/qrel/metafinite/text_format.cc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/text_format.cc.o" "gcc" "src/CMakeFiles/qrel_metafinite.dir/qrel/metafinite/text_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qrel_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
