file(REMOVE_RECURSE
  "libqrel_metafinite.a"
)
