file(REMOVE_RECURSE
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/functional_database.cc.o"
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/functional_database.cc.o.d"
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/relational_bridge.cc.o"
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/relational_bridge.cc.o.d"
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/reliability.cc.o"
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/reliability.cc.o.d"
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/term.cc.o"
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/term.cc.o.d"
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/text_format.cc.o"
  "CMakeFiles/qrel_metafinite.dir/qrel/metafinite/text_format.cc.o.d"
  "libqrel_metafinite.a"
  "libqrel_metafinite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_metafinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
