# Empty dependencies file for qrel_metafinite.
# This may be replaced when dependencies are built.
