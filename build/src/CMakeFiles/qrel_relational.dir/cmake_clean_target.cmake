file(REMOVE_RECURSE
  "libqrel_relational.a"
)
