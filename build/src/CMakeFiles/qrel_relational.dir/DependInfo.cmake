
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qrel/relational/atom_table.cc" "src/CMakeFiles/qrel_relational.dir/qrel/relational/atom_table.cc.o" "gcc" "src/CMakeFiles/qrel_relational.dir/qrel/relational/atom_table.cc.o.d"
  "/root/repo/src/qrel/relational/structure.cc" "src/CMakeFiles/qrel_relational.dir/qrel/relational/structure.cc.o" "gcc" "src/CMakeFiles/qrel_relational.dir/qrel/relational/structure.cc.o.d"
  "/root/repo/src/qrel/relational/vocabulary.cc" "src/CMakeFiles/qrel_relational.dir/qrel/relational/vocabulary.cc.o" "gcc" "src/CMakeFiles/qrel_relational.dir/qrel/relational/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
