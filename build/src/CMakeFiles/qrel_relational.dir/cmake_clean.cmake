file(REMOVE_RECURSE
  "CMakeFiles/qrel_relational.dir/qrel/relational/atom_table.cc.o"
  "CMakeFiles/qrel_relational.dir/qrel/relational/atom_table.cc.o.d"
  "CMakeFiles/qrel_relational.dir/qrel/relational/structure.cc.o"
  "CMakeFiles/qrel_relational.dir/qrel/relational/structure.cc.o.d"
  "CMakeFiles/qrel_relational.dir/qrel/relational/vocabulary.cc.o"
  "CMakeFiles/qrel_relational.dir/qrel/relational/vocabulary.cc.o.d"
  "libqrel_relational.a"
  "libqrel_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
