# Empty compiler generated dependencies file for qrel_relational.
# This may be replaced when dependencies are built.
