# Empty dependencies file for payroll_aggregates.
# This may be replaced when dependencies are built.
