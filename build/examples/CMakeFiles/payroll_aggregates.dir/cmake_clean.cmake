file(REMOVE_RECURSE
  "CMakeFiles/payroll_aggregates.dir/payroll_aggregates.cpp.o"
  "CMakeFiles/payroll_aggregates.dir/payroll_aggregates.cpp.o.d"
  "payroll_aggregates"
  "payroll_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
