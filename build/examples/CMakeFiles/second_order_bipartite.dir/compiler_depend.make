# Empty compiler generated dependencies file for second_order_bipartite.
# This may be replaced when dependencies are built.
