file(REMOVE_RECURSE
  "CMakeFiles/second_order_bipartite.dir/second_order_bipartite.cpp.o"
  "CMakeFiles/second_order_bipartite.dir/second_order_bipartite.cpp.o.d"
  "second_order_bipartite"
  "second_order_bipartite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/second_order_bipartite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
