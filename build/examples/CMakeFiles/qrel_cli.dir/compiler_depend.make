# Empty compiler generated dependencies file for qrel_cli.
# This may be replaced when dependencies are built.
