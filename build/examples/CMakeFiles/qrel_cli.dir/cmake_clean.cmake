file(REMOVE_RECURSE
  "CMakeFiles/qrel_cli.dir/qrel_cli.cpp.o"
  "CMakeFiles/qrel_cli.dir/qrel_cli.cpp.o.d"
  "qrel_cli"
  "qrel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
