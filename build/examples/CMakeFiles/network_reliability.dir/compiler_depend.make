# Empty compiler generated dependencies file for network_reliability.
# This may be replaced when dependencies are built.
