file(REMOVE_RECURSE
  "CMakeFiles/network_reliability.dir/network_reliability.cpp.o"
  "CMakeFiles/network_reliability.dir/network_reliability.cpp.o.d"
  "network_reliability"
  "network_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
