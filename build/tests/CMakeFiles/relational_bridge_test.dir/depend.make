# Empty dependencies file for relational_bridge_test.
# This may be replaced when dependencies are built.
