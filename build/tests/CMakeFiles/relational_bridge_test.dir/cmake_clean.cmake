file(REMOVE_RECURSE
  "CMakeFiles/relational_bridge_test.dir/relational_bridge_test.cc.o"
  "CMakeFiles/relational_bridge_test.dir/relational_bridge_test.cc.o.d"
  "relational_bridge_test"
  "relational_bridge_test.pdb"
  "relational_bridge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_bridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
