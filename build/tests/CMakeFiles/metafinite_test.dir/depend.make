# Empty dependencies file for metafinite_test.
# This may be replaced when dependencies are built.
