file(REMOVE_RECURSE
  "CMakeFiles/metafinite_test.dir/metafinite_test.cc.o"
  "CMakeFiles/metafinite_test.dir/metafinite_test.cc.o.d"
  "metafinite_test"
  "metafinite_test.pdb"
  "metafinite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metafinite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
