# Empty compiler generated dependencies file for metafinite_test.
# This may be replaced when dependencies are built.
