# Empty compiler generated dependencies file for unreliable_database_test.
# This may be replaced when dependencies are built.
