file(REMOVE_RECURSE
  "CMakeFiles/unreliable_database_test.dir/unreliable_database_test.cc.o"
  "CMakeFiles/unreliable_database_test.dir/unreliable_database_test.cc.o.d"
  "unreliable_database_test"
  "unreliable_database_test.pdb"
  "unreliable_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unreliable_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
