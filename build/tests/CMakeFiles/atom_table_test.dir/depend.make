# Empty dependencies file for atom_table_test.
# This may be replaced when dependencies are built.
