file(REMOVE_RECURSE
  "CMakeFiles/atom_table_test.dir/atom_table_test.cc.o"
  "CMakeFiles/atom_table_test.dir/atom_table_test.cc.o.d"
  "atom_table_test"
  "atom_table_test.pdb"
  "atom_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atom_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
