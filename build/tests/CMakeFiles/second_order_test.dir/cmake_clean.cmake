file(REMOVE_RECURSE
  "CMakeFiles/second_order_test.dir/second_order_test.cc.o"
  "CMakeFiles/second_order_test.dir/second_order_test.cc.o.d"
  "second_order_test"
  "second_order_test.pdb"
  "second_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/second_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
