# Empty dependencies file for second_order_test.
# This may be replaced when dependencies are built.
