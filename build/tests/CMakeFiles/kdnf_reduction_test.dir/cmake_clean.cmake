file(REMOVE_RECURSE
  "CMakeFiles/kdnf_reduction_test.dir/kdnf_reduction_test.cc.o"
  "CMakeFiles/kdnf_reduction_test.dir/kdnf_reduction_test.cc.o.d"
  "kdnf_reduction_test"
  "kdnf_reduction_test.pdb"
  "kdnf_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdnf_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
