# Empty dependencies file for kdnf_reduction_test.
# This may be replaced when dependencies are built.
