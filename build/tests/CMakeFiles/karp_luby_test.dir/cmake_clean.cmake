file(REMOVE_RECURSE
  "CMakeFiles/karp_luby_test.dir/karp_luby_test.cc.o"
  "CMakeFiles/karp_luby_test.dir/karp_luby_test.cc.o.d"
  "karp_luby_test"
  "karp_luby_test.pdb"
  "karp_luby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/karp_luby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
