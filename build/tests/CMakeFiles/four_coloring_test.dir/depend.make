# Empty dependencies file for four_coloring_test.
# This may be replaced when dependencies are built.
