file(REMOVE_RECURSE
  "CMakeFiles/four_coloring_test.dir/four_coloring_test.cc.o"
  "CMakeFiles/four_coloring_test.dir/four_coloring_test.cc.o.d"
  "four_coloring_test"
  "four_coloring_test.pdb"
  "four_coloring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/four_coloring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
