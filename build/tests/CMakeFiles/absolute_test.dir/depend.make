# Empty dependencies file for absolute_test.
# This may be replaced when dependencies are built.
