file(REMOVE_RECURSE
  "CMakeFiles/naive_mc_test.dir/naive_mc_test.cc.o"
  "CMakeFiles/naive_mc_test.dir/naive_mc_test.cc.o.d"
  "naive_mc_test"
  "naive_mc_test.pdb"
  "naive_mc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_mc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
