# Empty compiler generated dependencies file for naive_mc_test.
# This may be replaced when dependencies are built.
