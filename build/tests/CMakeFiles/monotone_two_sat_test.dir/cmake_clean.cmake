file(REMOVE_RECURSE
  "CMakeFiles/monotone_two_sat_test.dir/monotone_two_sat_test.cc.o"
  "CMakeFiles/monotone_two_sat_test.dir/monotone_two_sat_test.cc.o.d"
  "monotone_two_sat_test"
  "monotone_two_sat_test.pdb"
  "monotone_two_sat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monotone_two_sat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
