file(REMOVE_RECURSE
  "CMakeFiles/mfdb_text_format_test.dir/mfdb_text_format_test.cc.o"
  "CMakeFiles/mfdb_text_format_test.dir/mfdb_text_format_test.cc.o.d"
  "mfdb_text_format_test"
  "mfdb_text_format_test.pdb"
  "mfdb_text_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfdb_text_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
