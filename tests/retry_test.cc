// Retry machinery unit tests, both sides of the wire: the server's
// Retry-After estimator (EWMA over observed service times) and the
// client's CallWithRetry loop, driven by a fake clock and scripted
// attempt outcomes so every wait is asserted deterministically.

#include "qrel/net/retry.h"

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace qrel {
namespace {

// ---------------------------------------------------------------------------
// RetryAfterEstimator.

TEST(RetryAfterEstimatorTest, ColdEstimatorUsesDepthScaledFallback) {
  RetryAfterEstimator est(/*fallback_base_ms=*/100, /*min_ms=*/25,
                          /*max_ms=*/5000);
  EXPECT_EQ(est.sample_count(), 0u);
  // base * (1 + depth / workers): 100 * (1 + 4/2) = 300.
  EXPECT_EQ(est.HintMs(/*queue_depth=*/4, /*workers=*/2), 300u);
  EXPECT_EQ(est.HintMs(0, 2), 100u);
  // Zero workers is treated as one lane, not a division by zero.
  EXPECT_EQ(est.HintMs(1, 0), 200u);
}

TEST(RetryAfterEstimatorTest, WarmEstimatorPredictsFromDrainRate) {
  RetryAfterEstimator est(100, 25, 5000, /*alpha=*/0.5);
  est.RecordServiceTimeMs(200.0);
  EXPECT_EQ(est.sample_count(), 1u);
  // First sample seeds the EWMA exactly: 200 * (0+1) / 2 = 100.
  EXPECT_EQ(est.HintMs(0, 2), 100u);
  // hint = ewma * (depth+1) / workers: 200 * 4 / 2 = 400.
  EXPECT_EQ(est.HintMs(3, 2), 400u);
  // EWMA moves toward new observations: 0.5*400 + 0.5*200 = 300.
  est.RecordServiceTimeMs(400.0);
  EXPECT_EQ(est.HintMs(0, 1), 300u);
}

TEST(RetryAfterEstimatorTest, HintsAreClampedBothWays) {
  RetryAfterEstimator est(100, 25, 500);
  est.RecordServiceTimeMs(1.0);
  EXPECT_EQ(est.HintMs(0, 8), 25u);  // 1 * 1/8 clamps up to min
  est.RecordServiceTimeMs(1e9);
  EXPECT_EQ(est.HintMs(100, 1), 500u);  // clamps down to max
}

TEST(RetryAfterEstimatorTest, SwappedBoundsAreNormalized) {
  // min > max is a config slip, not UB: the pair is reordered.
  RetryAfterEstimator est(100, /*min_ms=*/5000, /*max_ms=*/25);
  est.RecordServiceTimeMs(100.0);
  uint64_t hint = est.HintMs(0, 1);
  EXPECT_GE(hint, 25u);
  EXPECT_LE(hint, 5000u);
}

TEST(RetryAfterEstimatorTest, RejectsPoisonSamples) {
  RetryAfterEstimator est(100, 25, 5000);
  est.RecordServiceTimeMs(-5.0);
  est.RecordServiceTimeMs(std::numeric_limits<double>::quiet_NaN());
  est.RecordServiceTimeMs(std::numeric_limits<double>::infinity());
  EXPECT_EQ(est.sample_count(), 0u);  // still cold: fallback formula
  EXPECT_EQ(est.HintMs(0, 1), 100u);
}

// ---------------------------------------------------------------------------
// CallWithRetry, on a fake clock.

struct FakeTime {
  uint64_t now = 0;
  std::vector<uint64_t> sleeps;

  void Install(RetryPolicy* policy, uint64_t jitter_value = 0) {
    policy->now_ms = [this] { return now; };
    policy->sleep_ms = [this](uint64_t ms) {
      sleeps.push_back(ms);
      now += ms;
    };
    policy->jitter = [jitter_value](uint64_t) { return jitter_value; };
  }
};

Response OkResponse(const std::string& value) {
  Response response;
  response.fields.emplace_back("value", value);
  return response;
}

Response ShedResponse(uint64_t retry_after_ms = 0) {
  Response response = ErrorResponse(Status::Unavailable("shed"));
  if (retry_after_ms > 0) {
    response.retry_after_ms = retry_after_ms;
  }
  return response;
}

// Builds an attempt function that replays `script` in order, counting
// calls. The script must not be exhausted by the loop under test.
struct ScriptedAttempts {
  std::vector<StatusOr<Response>> script;
  size_t calls = 0;

  std::function<StatusOr<Response>()> fn() {
    return [this]() -> StatusOr<Response> {
      EXPECT_LT(calls, script.size()) << "retry loop over-called attempt()";
      if (calls >= script.size()) {
        return Status::Internal("script exhausted");
      }
      return script[calls++];
    };
  }
};

TEST(CallWithRetryTest, FirstSuccessReturnsImmediately) {
  RetryPolicy policy;
  FakeTime time;
  time.Install(&policy);
  ScriptedAttempts attempts{{OkResponse("a")}};
  StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().fields[0].second, "a");
  EXPECT_EQ(attempts.calls, 1u);
  EXPECT_TRUE(time.sleeps.empty());
}

TEST(CallWithRetryTest, RetriesShedsWithExponentialBackoff) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 50;
  policy.backoff_multiplier = 2.0;
  FakeTime time;
  time.Install(&policy);
  ScriptedAttempts attempts{
      {ShedResponse(), ShedResponse(), OkResponse("ok")}};
  StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(attempts.calls, 3u);
  EXPECT_EQ(time.sleeps, (std::vector<uint64_t>{50, 100}));
}

TEST(CallWithRetryTest, TransportErrorsRetryLikeResponseErrors) {
  RetryPolicy policy;
  FakeTime time;
  time.Install(&policy);
  // A refused connection during a restart surfaces as a transport-level
  // kUnavailable; the loop must treat it exactly like a shed response.
  ScriptedAttempts attempts{
      {Status::Unavailable("connection refused"), OkResponse("ok")}};
  StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(attempts.calls, 2u);
}

TEST(CallWithRetryTest, NonRetryableCodesReturnOnFirstAttempt) {
  for (StatusCode code :
       {StatusCode::kNotFound, StatusCode::kInvalidArgument,
        StatusCode::kInternal, StatusCode::kFailedPrecondition}) {
    RetryPolicy policy;
    FakeTime time;
    time.Install(&policy);
    ScriptedAttempts attempts{{ErrorResponse(Status(code, "no"))}};
    StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().status.code(), code);
    EXPECT_EQ(attempts.calls, 1u) << StatusCodeName(code);
    EXPECT_TRUE(time.sleeps.empty());
  }
}

TEST(CallWithRetryTest, RetryAfterHintOverridesSmallerBackoff) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 50;
  FakeTime time;
  time.Install(&policy);
  // Hint 400 > backoff 50: the server's estimate wins. Second wait uses
  // backoff 100 because the second shed carries no hint.
  ScriptedAttempts attempts{
      {ShedResponse(/*retry_after_ms=*/400), ShedResponse(),
       OkResponse("ok")}};
  StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(time.sleeps, (std::vector<uint64_t>{400, 100}));
}

TEST(CallWithRetryTest, BackoffIsCappedAndJitterIsAdditive) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1000;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_ms = 1500;
  policy.total_deadline_ms = 60000;
  FakeTime time;
  time.Install(&policy, /*jitter_value=*/7);
  ScriptedAttempts attempts{
      {ShedResponse(), ShedResponse(), OkResponse("ok")}};
  StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
  ASSERT_TRUE(result.ok());
  // 1000 + 7, then min(10000, 1500) + 7.
  EXPECT_EQ(time.sleeps, (std::vector<uint64_t>{1007, 1507}));
}

TEST(CallWithRetryTest, AttemptBudgetIsExhaustible) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  FakeTime time;
  time.Install(&policy);
  ScriptedAttempts attempts{
      {ShedResponse(), ShedResponse(), ShedResponse()}};
  StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
  // The last error comes back as the (parseable) shed response.
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts.calls, 3u);
  EXPECT_EQ(time.sleeps.size(), 2u);
}

TEST(CallWithRetryTest, DeadlineStopsBeforeAWaitThatWouldCrossIt) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 300;
  policy.total_deadline_ms = 250;
  policy.max_attempts = 10;
  FakeTime time;
  time.Install(&policy);
  ScriptedAttempts attempts{{ShedResponse()}};
  StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status.code(), StatusCode::kUnavailable);
  // One attempt, zero sleeps: the 300ms wait would outlive the deadline.
  EXPECT_EQ(attempts.calls, 1u);
  EXPECT_TRUE(time.sleeps.empty());
}

TEST(CallWithRetryTest, DeadlineAccountsForTimeSpentInAttempts) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100;
  policy.total_deadline_ms = 1000;
  policy.max_attempts = 10;
  FakeTime time;
  time.Install(&policy);
  // Each attempt itself burns 450ms of fake clock.
  size_t calls = 0;
  auto attempt = [&]() -> StatusOr<Response> {
    ++calls;
    time.now += 450;
    return ShedResponse();
  };
  StatusOr<Response> result = CallWithRetry(attempt, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status.code(), StatusCode::kUnavailable);
  // 450 + sleep 100 + 450 = 1000: the next wait would cross the wall.
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(time.sleeps.size(), 1u);
}

TEST(CallWithRetryTest, ZeroDeadlineMeansNoWall) {
  RetryPolicy policy;
  policy.total_deadline_ms = 0;
  policy.initial_backoff_ms = 1 << 20;  // enormous waits, still taken
  policy.max_attempts = 3;
  FakeTime time;
  time.Install(&policy);
  ScriptedAttempts attempts{
      {ShedResponse(), ShedResponse(), OkResponse("ok")}};
  StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(time.sleeps.size(), 2u);
}

TEST(CallWithRetryTest, MaxAttemptsBelowOneStillRunsOnce) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  FakeTime time;
  time.Install(&policy);
  ScriptedAttempts attempts{{OkResponse("ok")}};
  StatusOr<Response> result = CallWithRetry(attempts.fn(), policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(attempts.calls, 1u);
}

}  // namespace
}  // namespace qrel
