#include "qrel/reductions/four_coloring.h"

#include <gtest/gtest.h>

#include "qrel/core/absolute.h"

namespace qrel {
namespace {

TEST(FourColoringTest, SmallGraphsByHand) {
  EXPECT_TRUE(IsFourColorable(CompleteGraph(2)));
  EXPECT_TRUE(IsFourColorable(CompleteGraph(3)));
  EXPECT_TRUE(IsFourColorable(CompleteGraph(4)));
  EXPECT_FALSE(IsFourColorable(CompleteGraph(5)));
  EXPECT_FALSE(IsFourColorable(CompleteGraph(6)));
  EXPECT_TRUE(IsFourColorable(CycleGraph(4)));
  EXPECT_TRUE(IsFourColorable(CycleGraph(5)));
  EXPECT_TRUE(IsFourColorable(SubdividedK5()));
}

TEST(FourColoringTest, SelfLoopNeverColorable) {
  Graph graph;
  graph.vertex_count = 2;
  graph.edges = {{0, 0}};
  EXPECT_FALSE(IsFourColorable(graph));
}

TEST(FourColoringTest, GeneratorsShape) {
  Graph k4 = CompleteGraph(4);
  EXPECT_EQ(k4.edges.size(), 6u);
  Graph c5 = CycleGraph(5);
  EXPECT_EQ(c5.edges.size(), 5u);
  Graph sk5 = SubdividedK5();
  EXPECT_EQ(sk5.vertex_count, 15);
  EXPECT_EQ(sk5.edges.size(), 20u);

  Rng rng(3);
  Graph random = RandomGraph(6, 0.5, &rng);
  EXPECT_EQ(random.vertex_count, 6);
  for (const auto& [u, v] : random.edges) {
    EXPECT_LT(u, v);
  }
}

TEST(Lemma59ReductionTest, DatabaseShape) {
  Graph triangle = CompleteGraph(3);
  Lemma59Instance instance = BuildLemma59Instance(triangle);
  const UnreliableDatabase& db = instance.database;
  EXPECT_EQ(db.universe_size(), 3);
  int e = *db.vocabulary().FindRelation("E");
  EXPECT_TRUE(db.observed().AtomTrue(e, {0, 1}));
  EXPECT_TRUE(db.observed().AtomTrue(e, {1, 0}));  // symmetric closure
  // 2 colour bits per vertex, all uncertain with probability 1/2.
  EXPECT_EQ(db.UncertainEntries().size(), 6u);
}

// The reduction's defining equivalence, cross-validated against the
// brute-force colouring search: G 4-colourable ⟺ 𝔇 ∉ AR_ψ.
void ExpectReductionMatches(const Graph& graph) {
  Lemma59Instance instance = BuildLemma59Instance(graph);
  AbsoluteReliabilityResult result =
      *AbsoluteReliabilityByWitness(instance.query, instance.database);
  EXPECT_EQ(IsFourColorable(graph), !result.absolutely_reliable)
      << "V=" << graph.vertex_count << " E=" << graph.edges.size();
}

TEST(Lemma59ReductionTest, ColorableGraphsAreNotAbsolutelyReliable) {
  ExpectReductionMatches(CompleteGraph(2));
  ExpectReductionMatches(CompleteGraph(4));
  ExpectReductionMatches(CycleGraph(5));
}

TEST(Lemma59ReductionTest, NonColorableGraphsAreAbsolutelyReliable) {
  ExpectReductionMatches(CompleteGraph(5));
}

TEST(Lemma59ReductionTest, RandomGraphsMatch) {
  Rng rng(20240102);
  for (int round = 0; round < 4; ++round) {
    Graph graph = RandomGraph(5, 0.6, &rng);
    if (graph.edges.empty()) {
      continue;  // the lemma's footnote excludes edgeless graphs
    }
    ExpectReductionMatches(graph);
  }
}

TEST(Lemma59ReductionTest, WitnessIsAProperColoring) {
  // For a 4-colourable graph, the witness world encodes a proper
  // 4-colouring: decode it and check every edge.
  Graph graph = CompleteGraph(4);
  Lemma59Instance instance = BuildLemma59Instance(graph);
  AbsoluteReliabilityResult result =
      *AbsoluteReliabilityByWitness(instance.query, instance.database);
  ASSERT_FALSE(result.absolutely_reliable);
  ASSERT_TRUE(result.witness.has_value());

  const UnreliableDatabase& db = instance.database;
  int r1 = *db.vocabulary().FindRelation("R1");
  int r2 = *db.vocabulary().FindRelation("R2");
  WorldView view(db, *result.witness);
  auto color = [&](int v) {
    Tuple t{static_cast<Element>(v)};
    return (view.AtomTrue(r1, t) ? 1 : 0) + (view.AtomTrue(r2, t) ? 2 : 0);
  };
  for (const auto& [u, v] : graph.edges) {
    EXPECT_NE(color(u), color(v)) << u << "-" << v;
  }
}

}  // namespace
}  // namespace qrel

#include "qrel/core/approx.h"
#include "qrel/core/reliability.h"

namespace qrel {
namespace {

TEST(Lemma510Test, AbsoluteErrorCannotResolveTinyExpectedErrors) {
  // Lemma 5.10's moral: an absolute-error approximation of H_ψ cannot
  // decide AR_ψ, because on Lemma 5.9 instances H is either 0 (graph not
  // 4-colourable) or positive-but-tiny (#colourings/4^V). An FPTRAS for H
  // would decide 4-colourability — hence NP ⊆ BPP. We exhibit the gap:
  // the two instances below have H = 0 and H = 744/1024, respectively;
  // scaled instances push the positive H below any fixed absolute ε while
  // the exact (exponential) computation still separates them.
  Lemma59Instance yes = BuildLemma59Instance(CompleteGraph(4));   // 4-col
  Lemma59Instance no = BuildLemma59Instance(CompleteGraph(5));    // not

  Rational h_yes = ExactReliability(yes.query, yes.database)->expected_error;
  Rational h_no = ExactReliability(no.query, no.database)->expected_error;
  EXPECT_GT(h_yes, Rational(0));  // some proper colouring exists
  EXPECT_TRUE(h_no.IsZero());     // every colouring is improper

  // The absolute-error estimator (legitimate per Cor. 5.5) sees both
  // instances as "H ≈ 0" at ε = 0.4: it cannot implement the decision.
  ApproxOptions options;
  options.epsilon = 0.4;
  options.delta = 0.1;
  options.seed = 3;
  double r_yes =
      ReliabilityAbsoluteApprox(yes.query, yes.database, options)->estimate;
  double r_no =
      ReliabilityAbsoluteApprox(no.query, no.database, options)->estimate;
  // Both reliabilities are within ε of 1 - H; the *absolute* gap between
  // the instances is |h_yes| which shrinks as 4^{-V}: for larger graphs it
  // drops under any fixed ε. Here we just document that both estimates are
  // legal under the absolute guarantee.
  EXPECT_NEAR(r_yes, 1.0 - h_yes.ToDouble(), 3 * options.epsilon);
  EXPECT_NEAR(r_no, 1.0, 3 * options.epsilon);
}

}  // namespace
}  // namespace qrel
