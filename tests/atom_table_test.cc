#include "qrel/relational/atom_table.h"

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(GroundAtomTest, EqualityAndOrdering) {
  GroundAtom a{0, {1, 2}};
  GroundAtom b{0, {1, 2}};
  GroundAtom c{0, {1, 3}};
  GroundAtom d{1, {0}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(a < d);
  EXPECT_FALSE(d < a);
}

TEST(GroundAtomTest, ToStringUsesVocabularyNames) {
  Vocabulary vocabulary;
  vocabulary.AddRelation("Edge", 2);
  vocabulary.AddRelation("Flag", 0);
  EXPECT_EQ(GroundAtomToString(GroundAtom{0, {3, 4}}, vocabulary),
            "Edge(3,4)");
  EXPECT_EQ(GroundAtomToString(GroundAtom{1, {}}, vocabulary), "Flag()");
}

TEST(AtomIndexTest, InternAssignsDenseInsertionOrderIds) {
  AtomIndex index;
  EXPECT_EQ(index.size(), 0);
  int a = index.Intern(GroundAtom{0, {1}});
  int b = index.Intern(GroundAtom{0, {2}});
  int c = index.Intern(GroundAtom{1, {0, 0}});
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  EXPECT_EQ(index.size(), 3);
}

TEST(AtomIndexTest, InternIsIdempotent) {
  AtomIndex index;
  int first = index.Intern(GroundAtom{0, {1}});
  int second = index.Intern(GroundAtom{0, {1}});
  EXPECT_EQ(first, second);
  EXPECT_EQ(index.size(), 1);
}

TEST(AtomIndexTest, FindAndAtomRoundTrip) {
  AtomIndex index;
  GroundAtom atom{2, {5, 6, 7}};
  int id = index.Intern(atom);
  EXPECT_EQ(index.Find(atom), id);
  EXPECT_FALSE(index.Find(GroundAtom{2, {5, 6, 8}}).has_value());
  EXPECT_TRUE(index.atom(id) == atom);
}

TEST(AtomIndexTest, ManyAtomsNoCollisionConfusion) {
  AtomIndex index;
  for (int r = 0; r < 4; ++r) {
    for (Element i = 0; i < 20; ++i) {
      for (Element j = 0; j < 20; ++j) {
        index.Intern(GroundAtom{r, {i, j}});
      }
    }
  }
  EXPECT_EQ(index.size(), 4 * 20 * 20);
  // Every atom resolves back to its own id.
  for (int id = 0; id < index.size(); ++id) {
    EXPECT_EQ(index.Find(index.atom(id)), id);
  }
}

}  // namespace
}  // namespace qrel
