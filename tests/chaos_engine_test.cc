// Chaos suite: for every registered fault site, inject a failure into a
// representative full-pipeline workload and assert the contract from
// DESIGN.md "Fault injection and hardening":
//   1. the failure surfaces as a typed non-OK Status (or a report that is
//      explicitly flagged degraded/partial) — never a crash or a silently
//      different answer, and
//   2. a subsequent un-faulted run of the same engine state reproduces the
//      baseline answer exactly.
// Sites register on first execution, so the suite discovers the site list
// by running one clean pass of the workload before arming anything. The
// whole file runs under QREL_SANITIZE in the sanitizer build.

#include <cstdio>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/engine/engine.h"
#include "qrel/metafinite/text_format.h"
#include "qrel/prob/text_format.h"
#include "qrel/propositional/dnf.h"
#include "qrel/propositional/naive_mc.h"
#include "qrel/util/fault_injection.h"

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
absent E 2 0 err=1/5
)";

constexpr char kMfdbText[] = R"(
universe 2
function salary 1
value salary 0 = 3200
dist salary 0 : 3200 @ 9/10, 8200 @ 1/10
)";

constexpr char kDatalogProgram[] =
    "Path(x, y) :- E(x, y).\n"
    "Path(x, z) :- Path(x, y), E(y, z).";

// One workload step's result, reduced to what the chaos contract needs:
// did it succeed, was any weakening flagged, and a full value signature
// for exact baseline comparison.
struct Outcome {
  std::string label;
  bool ok = false;
  bool flagged = false;  // degraded or partial — an honestly weakened answer
  std::string signature;
};

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

Outcome EngineOutcome(const std::string& label,
                      const StatusOr<EngineReport>& report) {
  Outcome outcome;
  outcome.label = label;
  outcome.ok = report.ok();
  if (!report.ok()) {
    outcome.signature = report.status().ToString();
    return outcome;
  }
  outcome.flagged = report->degraded || report->partial;
  outcome.signature = report->method + " r=" +
                      FormatDouble(report->reliability) +
                      " degraded=" + (report->degraded ? "1" : "0") +
                      " partial=" + (report->partial ? "1" : "0");
  return outcome;
}

Outcome StatusOutcome(const std::string& label, const Status& status,
                      const std::string& ok_signature) {
  Outcome outcome;
  outcome.label = label;
  outcome.ok = status.ok();
  outcome.signature = status.ok() ? ok_signature : status.ToString();
  return outcome;
}

std::string WriteTempFile(const std::string& name, const std::string& text) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

// Representative pass over the whole pipeline: .udb and .mfdb I/O and
// parsing, every engine rung (quantifier-free, exact enumeration,
// Cor 5.5 grounding + Karp-Luby, Thm 5.12 padded), the Datalog exact and
// padded paths, and a direct naive-MC call. Every label is present in the
// result regardless of which steps fail, and all randomized paths are
// seeded, so two clean runs produce identical signatures.
std::vector<Outcome> RunWorkload() {
  std::vector<Outcome> outcomes;

  std::string udb_path = WriteTempFile("chaos_engine.udb", kUdbText);
  StatusOr<UnreliableDatabase> database = LoadUdbFile(udb_path);
  outcomes.push_back(
      StatusOutcome("load_udb", database.status(), "ok"));

  StatusOr<UnreliableFunctionalDatabase> mfdb = ParseMfdb(kMfdbText);
  outcomes.push_back(StatusOutcome("parse_mfdb", mfdb.status(), "ok"));

  std::string mfdb_path = WriteTempFile("chaos_engine.mfdb", kMfdbText);
  StatusOr<UnreliableFunctionalDatabase> loaded_mfdb =
      LoadMfdbFile(mfdb_path);
  outcomes.push_back(
      StatusOutcome("load_mfdb", loaded_mfdb.status(), "ok"));

  {
    // Direct sampler call, wrapped the way a real caller boundary would
    // be so a simulated bad_alloc stays a typed status.
    Outcome outcome;
    outcome.label = "naive_mc";
    try {
      Dnf dnf(2);
      dnf.AddTerm({{0, true}, {1, false}});
      std::vector<Rational> probs = {Rational::Half(), Rational::Half()};
      StatusOr<NaiveMcResult> mc =
          NaiveMcProbability(dnf, probs, 64, /*seed=*/5);
      outcome.ok = mc.ok();
      outcome.signature =
          mc.ok() ? "estimate=" + FormatDouble(mc->estimate)
                  : mc.status().ToString();
    } catch (const std::bad_alloc&) {
      outcome.ok = false;
      outcome.signature = "RESOURCE_EXHAUSTED: out of memory in naive MC";
    }
    outcomes.push_back(outcome);
  }

  if (!database.ok()) {
    // The engine steps cannot run without a database; report them as
    // failed-by-upstream so every workload has the same label set.
    for (const char* label : {"engine_qf", "engine_exact",
                              "engine_extensional", "engine_cor55",
                              "engine_padded", "datalog_exact",
                              "datalog_padded"}) {
      Outcome outcome;
      outcome.label = label;
      outcome.ok = false;
      outcome.signature = "skipped: database unavailable";
      outcomes.push_back(outcome);
    }
    return outcomes;
  }

  ReliabilityEngine engine(std::move(database).value());

  EngineOptions defaults;
  defaults.seed = 7;
  outcomes.push_back(EngineOutcome("engine_qf", engine.Run("S(x)", defaults)));
  // The S self-join keeps this query off the safe-plan rung so the
  // enumeration fault sites stay covered.
  outcomes.push_back(EngineOutcome(
      "engine_exact",
      engine.Run("exists x y . E(x,y) & S(y) & S(x)", defaults)));
  outcomes.push_back(EngineOutcome(
      "engine_extensional",
      engine.Run("exists x y . E(x,y) & S(y)", defaults)));

  EngineOptions sampled = defaults;
  sampled.force_approximate = true;
  sampled.epsilon = 0.3;
  sampled.delta = 0.3;
  sampled.fixed_samples = 64;
  outcomes.push_back(EngineOutcome(
      "engine_cor55", engine.Run("exists x y . E(x,y) & S(y)", sampled)));
  outcomes.push_back(EngineOutcome(
      "engine_padded",
      engine.Run("forall x . exists y . E(x,y) | S(x)", sampled)));

  outcomes.push_back(EngineOutcome(
      "datalog_exact", engine.RunDatalog(kDatalogProgram, "Path", defaults)));
  outcomes.push_back(EngineOutcome(
      "datalog_padded",
      engine.RunDatalog(kDatalogProgram, "Path", sampled)));
  return outcomes;
}

// Sites the workload is expected to reach; a missing name means a layer
// lost its fault-site coverage.
const char* const kExpectedSites[] = {
    "prob.parse_udb.line",
    "prob.load_udb.read",
    "metafinite.parse_mfdb.line",
    "metafinite.load_mfdb.read",
    "logic.parse_formula",
    "logic.grounding.assignment",
    "core.quantifier_free.tuple",
    "core.exact.world",
    "core.approx.tuple",
    "core.approx.padded_sample",
    "propositional.karp_luby.sample",
    "propositional.naive_mc.sample",
    "engine.rung.quantifier_free",
    "engine.rung.extensional",
    "engine.exact.enumerate",
    "engine.rung.approx",
    "engine.datalog.exact",
    "engine.datalog.padded",
    "datalog.exact.world",
    "datalog.padded.world",
    "datalog.fixpoint.round",
};

class ChaosEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(ChaosEngineTest, WorkloadIsDeterministic) {
  std::vector<Outcome> first = RunWorkload();
  std::vector<Outcome> second = RunWorkload();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i].ok) << first[i].label << ": " << first[i].signature;
    EXPECT_EQ(first[i].signature, second[i].signature) << first[i].label;
  }
}

TEST_F(ChaosEngineTest, WorkloadDiscoversAllPipelineSites) {
  RunWorkload();
  std::vector<std::string> names = FaultInjector::Instance().SiteNames();
  for (const char* site : kExpectedSites) {
    EXPECT_NE(std::find(names.begin(), names.end(), site), names.end())
        << "fault site not reached by the chaos workload: " << site;
  }
}

TEST_F(ChaosEngineTest, EveryDiscoveredSiteFailsToATypedStatus) {
  std::vector<Outcome> baseline = RunWorkload();
  std::vector<std::string> sites = FaultInjector::Instance().SiteNames();
  ASSERT_FALSE(sites.empty());

  for (const std::string& site : sites) {
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Arm(site, 1);
    std::vector<Outcome> faulted = RunWorkload();
    EXPECT_EQ(FaultInjector::Instance().TriggeredCount(site), 1u)
        << "armed fault never fired at " << site;
    ASSERT_EQ(faulted.size(), baseline.size()) << site;
    for (size_t i = 0; i < faulted.size(); ++i) {
      ASSERT_EQ(faulted[i].label, baseline[i].label) << site;
      if (faulted[i].ok && !faulted[i].flagged) {
        // Not an error and not flagged: the answer must be untouched.
        EXPECT_EQ(faulted[i].signature, baseline[i].signature)
            << "silent answer change with fault at " << site << " in step "
            << faulted[i].label;
      }
    }

    // Recovery: with the fault cleared, the same state must reproduce the
    // baseline bit-for-bit.
    FaultInjector::Instance().Reset();
    std::vector<Outcome> recovered = RunWorkload();
    ASSERT_EQ(recovered.size(), baseline.size()) << site;
    for (size_t i = 0; i < recovered.size(); ++i) {
      EXPECT_EQ(recovered[i].signature, baseline[i].signature)
          << "state not recovered after fault at " << site << " in step "
          << recovered[i].label;
    }
  }
}

TEST_F(ChaosEngineTest, MidRunFaultsAlsoSurfaceTyped) {
  std::vector<Outcome> baseline = RunWorkload();
  // The 5th enumerated world / 7th sample is mid-loop for this workload.
  for (const char* spec :
       {"core.exact.world:5", "propositional.karp_luby.sample:7",
        "core.approx.padded_sample:7", "prob.parse_udb.line:3"}) {
    FaultInjector::Instance().Reset();
    ASSERT_TRUE(ArmFaultFromSpec(spec).ok());
    std::vector<Outcome> faulted = RunWorkload();
    ASSERT_EQ(faulted.size(), baseline.size());
    bool any_failed = false;
    for (size_t i = 0; i < faulted.size(); ++i) {
      if (!faulted[i].ok) {
        any_failed = true;
      } else if (!faulted[i].flagged) {
        EXPECT_EQ(faulted[i].signature, baseline[i].signature)
            << spec << " in step " << faulted[i].label;
      }
    }
    EXPECT_TRUE(any_failed) << spec;
  }
}

TEST_F(ChaosEngineTest, SimulatedAllocationFailureBecomesTypedStatus) {
  RunWorkload();  // discovery pass
  std::vector<std::string> sites = FaultInjector::Instance().SiteNames();
  for (const std::string& site : sites) {
    // File-I/O sites — the load_* read sites and the util/vfs.h syscall
    // wrappers they sit on — live outside the parse/engine bad_alloc
    // boundaries (an out-of-memory read is the OS's problem, not
    // simulable this way); everything else must convert to
    // kResourceExhausted.
    if (site.find("load_") != std::string::npos ||
        site.rfind("vfs.", 0) == 0 || site.rfind("crash-after-", 0) == 0) {
      continue;
    }
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Arm(site, 1, StatusCode::kInternal,
                                  FaultKind::kBadAlloc);
    std::vector<Outcome> faulted = RunWorkload();  // must not crash
    EXPECT_EQ(FaultInjector::Instance().TriggeredCount(site), 1u) << site;
    bool any_resource_exhausted = false;
    for (const Outcome& outcome : faulted) {
      if (!outcome.ok &&
          outcome.signature.find("RESOURCE_EXHAUSTED") != std::string::npos) {
        any_resource_exhausted = true;
      }
    }
    EXPECT_TRUE(any_resource_exhausted)
        << "simulated bad_alloc at " << site
        << " did not surface as RESOURCE_EXHAUSTED";
  }
}

TEST_F(ChaosEngineTest, EverySiteOnceChaosRun) {
  std::vector<Outcome> baseline = RunWorkload();
  FaultInjector::Instance().ArmEverySiteOnce(StatusCode::kInternal);
  std::vector<Outcome> faulted = RunWorkload();  // must not crash
  ASSERT_EQ(faulted.size(), baseline.size());
  for (size_t i = 0; i < faulted.size(); ++i) {
    if (faulted[i].ok && !faulted[i].flagged) {
      EXPECT_EQ(faulted[i].signature, baseline[i].signature)
          << faulted[i].label;
    }
  }
  FaultInjector::Instance().Reset();
  std::vector<Outcome> recovered = RunWorkload();
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].signature, baseline[i].signature)
        << recovered[i].label;
  }
}

}  // namespace
}  // namespace qrel
