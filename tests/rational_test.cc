#include "qrel/util/rational.h"

#include <gtest/gtest.h>

#include "qrel/util/rng.h"

namespace qrel {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.denominator().ToInt64(), 1);
}

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  Rational r(6, 8);
  EXPECT_EQ(r.numerator().ToInt64(), 3);
  EXPECT_EQ(r.denominator().ToInt64(), 4);

  Rational negative_den(3, -4);
  EXPECT_EQ(negative_den.numerator().ToInt64(), -3);
  EXPECT_EQ(negative_den.denominator().ToInt64(), 4);

  Rational double_negative(-3, -4);
  EXPECT_EQ(double_negative.numerator().ToInt64(), 3);

  Rational zero(0, -17);
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.denominator().ToInt64(), 1);
}

TEST(RationalTest, ArithmeticBasics) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
  EXPECT_EQ(half.Complement().ToString(), "1/2");
  EXPECT_EQ(Rational(1, 4).Complement().ToString(), "3/4");
}

TEST(RationalTest, ComparisonCrossMultiplies) {
  EXPECT_LT(Rational(1, 3).Compare(Rational(1, 2)), 0);
  EXPECT_GT(Rational(2, 3).Compare(Rational(1, 2)), 0);
  EXPECT_EQ(Rational(2, 4).Compare(Rational(1, 2)), 0);
  EXPECT_TRUE(Rational(-1, 2) < Rational(1, 3));
  EXPECT_TRUE(Rational(1, 2) == Rational(3, 6));
}

TEST(RationalTest, IsProbability) {
  EXPECT_TRUE(Rational(0).IsProbability());
  EXPECT_TRUE(Rational(1).IsProbability());
  EXPECT_TRUE(Rational(1, 2).IsProbability());
  EXPECT_FALSE(Rational(-1, 2).IsProbability());
  EXPECT_FALSE(Rational(3, 2).IsProbability());
}

TEST(RationalTest, ParseFractions) {
  EXPECT_EQ(Rational::Parse("3/4")->ToString(), "3/4");
  EXPECT_EQ(Rational::Parse("6/8")->ToString(), "3/4");
  EXPECT_EQ(Rational::Parse("-3/4")->ToString(), "-3/4");
  EXPECT_EQ(Rational::Parse("7")->ToString(), "7");
  EXPECT_EQ(Rational::Parse("0")->ToString(), "0");
}

TEST(RationalTest, ParseDecimals) {
  EXPECT_EQ(Rational::Parse("0.25")->ToString(), "1/4");
  EXPECT_EQ(Rational::Parse("0.1")->ToString(), "1/10");
  EXPECT_EQ(Rational::Parse("-0.5")->ToString(), "-1/2");
  EXPECT_EQ(Rational::Parse("1.5")->ToString(), "3/2");
  EXPECT_FALSE(Rational::Parse("2.").ok());
}

TEST(RationalTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Rational::Parse("").ok());
  EXPECT_FALSE(Rational::Parse("1/0").ok());
  EXPECT_FALSE(Rational::Parse("a/b").ok());
  EXPECT_FALSE(Rational::Parse("1//2").ok());
  EXPECT_FALSE(Rational::Parse("1.2.3").ok());
}

TEST(RationalTest, ToDoubleMatches) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-1, 4).ToDouble(), -0.25);
  EXPECT_DOUBLE_EQ(Rational(1, 3).ToDouble(), 1.0 / 3.0);
}

TEST(RationalTest, ToDoubleSurvivesHugeOperands) {
  // Numerator and denominator each ~2000 bits; the quotient is 1/2.
  BigInt huge = BigInt::TwoPow(2000);
  Rational ratio(huge, huge * BigInt(2));
  EXPECT_DOUBLE_EQ(ratio.ToDouble(), 0.5);
}

TEST(RationalTest, SumOfWorldProbabilitiesStyleIdentity) {
  // Σ over 8 outcomes of a 3-coin product distribution is exactly 1.
  Rational p1(1, 3), p2(1, 7), p3(2, 5);
  Rational total;
  for (int code = 0; code < 8; ++code) {
    Rational term = Rational::One();
    term *= (code & 1) ? p1 : p1.Complement();
    term *= (code & 2) ? p2 : p2.Complement();
    term *= (code & 4) ? p3 : p3.Complement();
    total += term;
  }
  EXPECT_TRUE(total.IsOne());
}

class RationalFieldPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RationalFieldPropertyTest, FieldAxiomsHold) {
  Rng rng(GetParam());
  auto random_rational = [&rng]() {
    int64_t num = static_cast<int64_t>(rng.NextBelow(2000)) - 1000;
    int64_t den = static_cast<int64_t>(rng.NextBelow(999)) + 1;
    return Rational(num, den);
  };
  for (int i = 0; i < 100; ++i) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_TRUE((a - a).IsZero());
    if (!a.IsZero()) {
      EXPECT_EQ((b / a) * a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalFieldPropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace qrel
