#include "qrel/logic/classify.h"

#include <gtest/gtest.h>

#include "qrel/logic/parser.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(ClassifyTest, QuantifierFree) {
  EXPECT_TRUE(IsQuantifierFree(MustParse("S(x) & !T(y)")));
  EXPECT_TRUE(IsQuantifierFree(MustParse("x = y | S(x)")));
  EXPECT_FALSE(IsQuantifierFree(MustParse("exists x . S(x)")));
  EXPECT_FALSE(IsQuantifierFree(MustParse("S(x) & (forall y . T(y))")));
}

TEST(ClassifyTest, ConjunctiveQueries) {
  // The Proposition 3.2 query is conjunctive.
  EXPECT_TRUE(IsConjunctiveQuery(
      MustParse("exists x y z . L(x,y) & R(x,z) & S(y) & S(z)")));
  EXPECT_TRUE(IsConjunctiveQuery(MustParse("exists x . S(x)")));
  EXPECT_TRUE(IsConjunctiveQuery(MustParse("S(x) & T(y)")));
  EXPECT_TRUE(IsConjunctiveQuery(MustParse("exists x . S(x) & x = y")));

  EXPECT_FALSE(IsConjunctiveQuery(MustParse("exists x . S(x) | T(x)")));
  EXPECT_FALSE(IsConjunctiveQuery(MustParse("exists x . !S(x)")));
  EXPECT_FALSE(IsConjunctiveQuery(MustParse("forall x . S(x)")));
  EXPECT_FALSE(
      IsConjunctiveQuery(MustParse("exists x . S(x) & (T(x) | S(x))")));
}

TEST(ClassifyTest, Existential) {
  EXPECT_TRUE(IsExistential(MustParse("exists x . S(x) | !T(x)")));
  EXPECT_TRUE(IsExistential(MustParse("S(x)")));
  // Negated universal is existential.
  EXPECT_TRUE(IsExistential(MustParse("!(forall x . S(x))")));
  EXPECT_FALSE(IsExistential(MustParse("forall x . S(x)")));
  EXPECT_FALSE(IsExistential(MustParse("!(exists x . S(x))")));
  // Lemma 5.9's query.
  EXPECT_TRUE(IsExistential(MustParse(
      "exists x y . E(x,y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))")));
}

TEST(ClassifyTest, Universal) {
  EXPECT_TRUE(IsUniversal(MustParse("forall x . S(x) -> T(x)")));
  EXPECT_TRUE(IsUniversal(MustParse("!(exists x . S(x))")));
  EXPECT_TRUE(IsUniversal(MustParse("S(x)")));
  EXPECT_FALSE(IsUniversal(MustParse("exists x . S(x)")));
}

TEST(ClassifyTest, MostSpecificClass) {
  EXPECT_EQ(Classify(MustParse("S(x) | !T(x)")),
            QueryClass::kQuantifierFree);
  // Quantifier-free conjunction reports quantifier-free, not conjunctive.
  EXPECT_EQ(Classify(MustParse("S(x) & T(x)")), QueryClass::kQuantifierFree);
  // ∃x (S(x) ∧ T(x)) is hierarchical and self-join-free: safe.
  EXPECT_EQ(Classify(MustParse("exists x . S(x) & T(x)")),
            QueryClass::kSafeConjunctive);
  // Non-hierarchical (x misses T(y), y misses S(x)): conjunctive but not
  // safe.
  EXPECT_EQ(Classify(MustParse("exists x . exists y . S(x) & E(x, y) & T(y)")),
            QueryClass::kConjunctive);
  // Self-join: conjunctive but not safe.
  EXPECT_EQ(Classify(MustParse("exists x . exists y . E(x, y) & E(y, x)")),
            QueryClass::kConjunctive);
  EXPECT_EQ(Classify(MustParse("exists x . S(x) | T(x)")),
            QueryClass::kExistential);
  EXPECT_EQ(Classify(MustParse("forall x . S(x)")), QueryClass::kUniversal);
  EXPECT_EQ(Classify(MustParse("forall x . exists y . E(x,y)")),
            QueryClass::kGeneralFirstOrder);
  EXPECT_EQ(Classify(MustParse("(exists x . S(x)) -> (exists y . T(y))")),
            QueryClass::kGeneralFirstOrder);
}

TEST(ClassifyTest, ClassNames) {
  EXPECT_STREQ(QueryClassName(QueryClass::kQuantifierFree),
               "quantifier-free");
  EXPECT_STREQ(QueryClassName(QueryClass::kSafeConjunctive),
               "safe conjunctive");
  EXPECT_STREQ(QueryClassName(QueryClass::kConjunctive), "conjunctive");
  EXPECT_STREQ(QueryClassName(QueryClass::kExistential), "existential");
  EXPECT_STREQ(QueryClassName(QueryClass::kUniversal), "universal");
  EXPECT_STREQ(QueryClassName(QueryClass::kGeneralFirstOrder),
               "general first-order");
}

}  // namespace
}  // namespace qrel
