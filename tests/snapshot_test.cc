// Snapshot container format: value round-trips, the typed corruption
// taxonomy (kNotFound / kInvalidArgument / kDataLoss — never a crash,
// never a silent restart), and write atomicity (a failed or interrupted
// write leaves the previous snapshot intact).

#include "qrel/util/snapshot.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/util/fault_injection.h"

namespace qrel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path,
                   const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

SnapshotData MakeSample() {
  SnapshotWriter writer;
  writer.U8(3);
  writer.U32(0xdeadbeef);
  writer.U64(uint64_t{1} << 62);
  writer.I64(-123456789);
  writer.Double(0.625);
  writer.String("hello snapshot");
  writer.BigIntVal(BigInt(-42));
  writer.RationalVal(Rational(3, 8));
  writer.RngState(Rng(99));
  writer.TupleVal({0, 5, 2});

  SnapshotData data;
  data.kind = "test.sample.v1";
  data.fingerprint = 0x1234abcd5678ef00ULL;
  data.work_spent = 777;
  data.payload = writer.TakeBytes();
  return data;
}

TEST(SnapshotFormatTest, EncodeDecodeRoundTrip) {
  SnapshotData data = MakeSample();
  std::vector<uint8_t> bytes = EncodeSnapshot(data);
  StatusOr<SnapshotData> decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, data.kind);
  EXPECT_EQ(decoded->fingerprint, data.fingerprint);
  EXPECT_EQ(decoded->work_spent, data.work_spent);
  EXPECT_EQ(decoded->payload, data.payload);

  // Every value reads back exactly, in write order.
  SnapshotReader reader(decoded->payload);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  std::string s;
  BigInt big;
  Rational rational;
  Rng rng(1);
  std::vector<int32_t> tuple;
  ASSERT_TRUE(reader.U8(&u8).ok());
  EXPECT_EQ(u8, 3);
  ASSERT_TRUE(reader.U32(&u32).ok());
  EXPECT_EQ(u32, 0xdeadbeefu);
  ASSERT_TRUE(reader.U64(&u64).ok());
  EXPECT_EQ(u64, uint64_t{1} << 62);
  ASSERT_TRUE(reader.I64(&i64).ok());
  EXPECT_EQ(i64, -123456789);
  ASSERT_TRUE(reader.Double(&d).ok());
  EXPECT_EQ(d, 0.625);
  ASSERT_TRUE(reader.String(&s).ok());
  EXPECT_EQ(s, "hello snapshot");
  ASSERT_TRUE(reader.BigIntVal(&big).ok());
  EXPECT_EQ(big.ToDecimalString(), "-42");
  ASSERT_TRUE(reader.RationalVal(&rational).ok());
  EXPECT_EQ(rational, Rational(3, 8));
  ASSERT_TRUE(reader.RngState(&rng).ok());
  EXPECT_EQ(rng.NextUint64(), Rng(99).NextUint64());
  ASSERT_TRUE(reader.TupleVal(&tuple).ok());
  EXPECT_EQ(tuple, (std::vector<int32_t>{0, 5, 2}));
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST(SnapshotFormatTest, EncodingIsCanonical) {
  // Decode(Encode(x)) re-encodes byte-identically — the invariant the
  // fuzz harness checks on arbitrary accepted inputs.
  SnapshotData data = MakeSample();
  std::vector<uint8_t> bytes = EncodeSnapshot(data);
  StatusOr<SnapshotData> decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(EncodeSnapshot(*decoded), bytes);
}

TEST(SnapshotFormatTest, MissingFileIsNotFound) {
  StatusOr<SnapshotData> loaded =
      ReadSnapshotFile(TempPath("does_not_exist.snapshot"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotFormatTest, FileRoundTrip) {
  std::string path = TempPath("roundtrip.snapshot");
  SnapshotData data = MakeSample();
  ASSERT_TRUE(WriteSnapshotFile(path, data).ok());
  StatusOr<SnapshotData> loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->kind, data.kind);
  EXPECT_EQ(loaded->payload, data.payload);
  std::remove(path.c_str());
}

// --- Corruption corpus -----------------------------------------------------

TEST(SnapshotCorruptionTest, TruncationAtEveryLengthIsTyped) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeSample());
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<SnapshotData> decoded = DecodeSnapshot(bytes.data(), len);
    ASSERT_FALSE(decoded.ok()) << "truncated to " << len << " bytes";
    StatusCode code = decoded.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << "truncated to " << len << ": " << decoded.status().ToString();
  }
}

TEST(SnapshotCorruptionTest, EveryFlippedByteIsDetected) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeSample());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x40;
    StatusOr<SnapshotData> decoded =
        DecodeSnapshot(corrupt.data(), corrupt.size());
    // The trailing checksum covers every byte before it; flipping the
    // checksum itself mismatches too. No flip may decode successfully.
    ASSERT_FALSE(decoded.ok()) << "flip at offset " << i;
    StatusCode code = decoded.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << "flip at offset " << i << ": " << decoded.status().ToString();
  }
}

TEST(SnapshotCorruptionTest, BadMagicIsInvalidArgument) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeSample());
  bytes[0] = 'X';
  StatusOr<SnapshotData> decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotCorruptionTest, StaleVersionIsInvalidArgument) {
  // Rebuild the container with a bumped version and a valid checksum, so
  // version skew is reported as such rather than as corruption.
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeSample());
  bytes[8] = static_cast<uint8_t>(kSnapshotFormatVersion + 1);
  // Recompute the trailing checksum (FNV-1a over everything before it).
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i + 8 < bytes.size(); ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(hash >> (8 * i));
  }
  StatusOr<SnapshotData> decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(SnapshotCorruptionTest, TruncatedFileOnDiskIsDataLoss) {
  std::string path = TempPath("truncated.snapshot");
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeSample());
  bytes.resize(bytes.size() / 2);
  WriteAllBytes(path, bytes);
  StatusOr<SnapshotData> loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, TrailingGarbageIsDataLoss) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeSample());
  bytes.push_back(0x00);
  StatusOr<SnapshotData> decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotCorruptionTest, ZeroDenominatorRationalIsDataLoss) {
  SnapshotWriter writer;
  writer.String("1");  // numerator
  writer.String("0");  // denominator: must be rejected before Rational()
  SnapshotReader reader(writer.TakeBytes());
  Rational value;
  Status status = reader.RationalVal(&value);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(SnapshotCorruptionTest, AllZeroRngStateIsDataLoss) {
  SnapshotWriter writer;
  for (int i = 0; i < 4; ++i) {
    writer.U64(0);
  }
  SnapshotReader reader(writer.TakeBytes());
  Rng rng(1);
  Status status = reader.RngState(&rng);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(SnapshotCorruptionTest, PayloadReadersRejectOverrunLengths) {
  // A string length pointing past the payload end must not read out of
  // bounds (the checksum cannot help once an algorithm interprets its own
  // payload, so the readers guard independently).
  SnapshotWriter writer;
  writer.U32(1000);  // claimed string length with no bytes behind it
  SnapshotReader reader(writer.TakeBytes());
  std::string s;
  Status status = reader.String(&s);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

// --- Atomicity and the Checkpointer ---------------------------------------

TEST(SnapshotAtomicityTest, FailedWriteLeavesPreviousSnapshotIntact) {
  FaultInjector::Instance().Reset();
  std::string path = TempPath("atomic.snapshot");
  SnapshotData first = MakeSample();
  ASSERT_TRUE(WriteSnapshotFile(path, first).ok());

  SnapshotData second = MakeSample();
  second.work_spent = 999999;
  FaultInjector::Instance().Arm("util.snapshot.write", 1);
  Status failed = WriteSnapshotFile(path, second);
  ASSERT_FALSE(failed.ok());

  StatusOr<SnapshotData> loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->work_spent, first.work_spent);
  std::remove(path.c_str());
  FaultInjector::Instance().Reset();
}

TEST(SnapshotAtomicityTest, TempNameDoesNotClobberOtherWriters) {
  // The temp name is pid-unique, so another writer's in-progress
  // "<path>.tmp*" file (here: a sentinel under the legacy fixed name)
  // survives a concurrent WriteSnapshotFile to the same path.
  std::string path = TempPath("shared.snapshot");
  std::string other_temp = path + ".tmp";
  std::vector<uint8_t> sentinel = {'o', 't', 'h', 'e', 'r'};
  WriteAllBytes(other_temp, sentinel);

  ASSERT_TRUE(WriteSnapshotFile(path, MakeSample()).ok());

  EXPECT_EQ(ReadAllBytes(other_temp), sentinel)
      << "WriteSnapshotFile truncated a foreign temp file";
  ASSERT_TRUE(ReadSnapshotFile(path).ok());
  std::remove(other_temp.c_str());
  std::remove(path.c_str());
}

TEST(CheckpointerTest, WouldClaimTracksAttachmentAndClaims) {
  EXPECT_FALSE(CheckpointScope::WouldClaim(nullptr));
  RunContext bare;
  EXPECT_FALSE(CheckpointScope::WouldClaim(&bare));

  std::string path = TempPath("would_claim.snapshot");
  Checkpointer checkpointer(path, std::chrono::milliseconds(0));
  RunContext ctx;
  ctx.SetCheckpointer(&checkpointer);
  EXPECT_TRUE(CheckpointScope::WouldClaim(&ctx));
  {
    CheckpointScope outer(&ctx, "outer.v1", 1);
    // A nested scope would be inert — callers can skip fingerprint work.
    EXPECT_FALSE(CheckpointScope::WouldClaim(&ctx));
  }
  EXPECT_TRUE(CheckpointScope::WouldClaim(&ctx));
  std::remove(path.c_str());
}

TEST(CheckpointerTest, ScopeClaimingMakesNestedScopesInert) {
  std::string path = TempPath("claim.snapshot");
  Checkpointer checkpointer(path, std::chrono::milliseconds(0));
  RunContext ctx;
  ctx.SetCheckpointer(&checkpointer);

  CheckpointScope outer(&ctx, "outer.v1", 1);
  EXPECT_TRUE(outer.active());
  {
    CheckpointScope inner(&ctx, "inner.v1", 2);
    EXPECT_FALSE(inner.active());
    // An inert scope never writes.
    ASSERT_TRUE(inner.MaybeCheckpoint([](SnapshotWriter&) {}).ok());
    EXPECT_EQ(checkpointer.writes(), 0u);
  }
  // The claim is released with the scope; a later outermost loop can claim.
  {
    CheckpointScope next(&ctx, "next.v1", 3);
    EXPECT_FALSE(next.active());  // outer still alive
  }
  std::remove(path.c_str());
}

TEST(CheckpointerTest, ResumeRequiresMatchingFingerprint) {
  std::string path = TempPath("fingerprint.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    CheckpointScope scope(&ctx, "algo.v1", /*fingerprint=*/111);
    ASSERT_TRUE(scope.CheckpointNow([](SnapshotWriter& w) { w.U64(5); }).ok());
  }
  {
    // Same kind, different parameters: refuse, do not silently restart.
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    CheckpointScope scope(&ctx, "algo.v1", /*fingerprint=*/222);
    std::optional<SnapshotReader> reader;
    Status status = scope.TakeResume(&reader);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
  {
    // A different kind ignores the snapshot (it belongs to another rung).
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    CheckpointScope scope(&ctx, "other.v1", /*fingerprint=*/111);
    std::optional<SnapshotReader> reader;
    ASSERT_TRUE(scope.TakeResume(&reader).ok());
    EXPECT_FALSE(reader.has_value());
    EXPECT_FALSE(checkpointer.resume_consumed());
  }
  {
    // Matching kind and fingerprint: the state comes back, with the work
    // counter restored onto the context.
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    CheckpointScope scope(&ctx, "algo.v1", /*fingerprint=*/111);
    std::optional<SnapshotReader> reader;
    ASSERT_TRUE(scope.TakeResume(&reader).ok());
    ASSERT_TRUE(reader.has_value());
    uint64_t value = 0;
    ASSERT_TRUE(reader->U64(&value).ok());
    EXPECT_EQ(value, 5u);
    EXPECT_TRUE(checkpointer.resume_consumed());
  }
  std::remove(path.c_str());
}

TEST(CheckpointerTest, CorruptSnapshotFailsLoadForResume) {
  std::string path = TempPath("corrupt_resume.snapshot");
  SnapshotData data = MakeSample();
  ASSERT_TRUE(WriteSnapshotFile(path, data).ok());
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  bytes[bytes.size() / 2] ^= 0xff;
  WriteAllBytes(path, bytes);

  Checkpointer checkpointer(path, std::chrono::milliseconds(0));
  Status loaded = checkpointer.LoadForResume();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(checkpointer.has_resume());
  std::remove(path.c_str());
}

TEST(CheckpointerTest, MissingSnapshotMeansFreshRun) {
  Checkpointer checkpointer(TempPath("fresh.snapshot"),
                            std::chrono::milliseconds(0));
  ASSERT_TRUE(checkpointer.LoadForResume().ok());
  EXPECT_FALSE(checkpointer.has_resume());
}

TEST(CheckpointerTest, WorkSpentIsRestoredOntoContext) {
  std::string path = TempPath("workspent.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    ASSERT_TRUE(ctx.Charge(123).ok());
    CheckpointScope scope(&ctx, "algo.v1", 9);
    ASSERT_TRUE(scope.CheckpointNow([](SnapshotWriter&) {}).ok());
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    ASSERT_TRUE(ctx.Charge(7).ok());  // a resumed run's replayed prologue
    CheckpointScope scope(&ctx, "algo.v1", 9);
    std::optional<SnapshotReader> reader;
    ASSERT_TRUE(scope.TakeResume(&reader).ok());
    ASSERT_TRUE(reader.has_value());
    // The overwrite discards the prologue's re-charges in favor of the
    // interrupted run's total, which already included them.
    EXPECT_EQ(ctx.work_spent(), 123u);
  }
  std::remove(path.c_str());
}

// A pending cooperative cancellation forces MaybeCheckpoint to flush even
// when the interval has not elapsed: the very next Charge() ends the run,
// so this is the last safe point to persist progress. Both the qrel_cli
// SIGINT flush and the server's drain checkpoint-abort rely on this.
TEST(CheckpointerTest, PendingCancellationForcesAFlushInsideTheInterval) {
  std::string path = TempPath("trip_cancel.snapshot");
  Checkpointer checkpointer(path, std::chrono::hours(24));
  RunContext ctx;
  ctx.SetCheckpointer(&checkpointer);
  CheckpointScope scope(&ctx, "algo.v1", 11);
  ASSERT_TRUE(
      scope.MaybeCheckpoint([](SnapshotWriter& w) { w.U64(1); }).ok());
  EXPECT_EQ(checkpointer.writes(), 0u);  // interval-gated: nothing yet
  ctx.RequestCancellation();
  ASSERT_TRUE(
      scope.MaybeCheckpoint([](SnapshotWriter& w) { w.U64(2); }).ok());
  EXPECT_EQ(checkpointer.writes(), 1u);
  // The flushed snapshot is complete and resumable.
  Checkpointer fresh(path, std::chrono::hours(24));
  ASSERT_TRUE(fresh.LoadForResume().ok());
  EXPECT_TRUE(fresh.has_resume());
  std::remove(path.c_str());
}

TEST(CheckpointerTest, ExhaustedWorkBudgetForcesAFlushInsideTheInterval) {
  std::string path = TempPath("trip_budget.snapshot");
  Checkpointer checkpointer(path, std::chrono::hours(24));
  RunContext ctx;
  ctx.SetWorkBudget(10);
  ctx.SetCheckpointer(&checkpointer);
  CheckpointScope scope(&ctx, "algo.v1", 12);
  ASSERT_TRUE(ctx.Charge(9).ok());
  ASSERT_TRUE(
      scope.MaybeCheckpoint([](SnapshotWriter& w) { w.U64(1); }).ok());
  EXPECT_EQ(checkpointer.writes(), 0u);  // budget not yet exhausted
  ASSERT_TRUE(ctx.Charge(1).ok());      // spends the last unit
  ASSERT_TRUE(
      scope.MaybeCheckpoint([](SnapshotWriter& w) { w.U64(2); }).ok());
  EXPECT_EQ(checkpointer.writes(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qrel
