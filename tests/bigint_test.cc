#include "qrel/util/bigint.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/util/rng.h"

namespace qrel {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(zero.IsNegative());
  EXPECT_EQ(zero.Sign(), 0);
  EXPECT_EQ(zero.ToDecimalString(), "0");
  EXPECT_EQ(zero.BitLength(), 0u);
}

TEST(BigIntTest, FromInt64RoundTrips) {
  for (int64_t value : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                        int64_t{-42}, int64_t{1} << 40, -(int64_t{1} << 40),
                        std::numeric_limits<int64_t>::max(),
                        std::numeric_limits<int64_t>::min()}) {
    BigInt big(value);
    EXPECT_TRUE(big.FitsInt64());
    EXPECT_EQ(big.ToInt64(), value) << value;
    EXPECT_EQ(big.ToDecimalString(), std::to_string(value)) << value;
  }
}

TEST(BigIntTest, FromUint64) {
  BigInt big = BigInt::FromUint64(0xffffffffffffffffULL);
  EXPECT_EQ(big.ToDecimalString(), "18446744073709551615");
  EXPECT_FALSE(big.FitsInt64());
}

TEST(BigIntTest, DecimalStringRoundTrip) {
  const std::string digits =
      "123456789012345678901234567890123456789012345678901234567890";
  BigInt big = BigInt::FromDecimalString(digits).value();
  EXPECT_EQ(big.ToDecimalString(), digits);
  BigInt negative = BigInt::FromDecimalString("-" + digits).value();
  EXPECT_EQ(negative.ToDecimalString(), "-" + digits);
}

TEST(BigIntTest, FromDecimalStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromDecimalString("").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("-").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("12a3").ok());
  EXPECT_FALSE(BigInt::FromDecimalString(" 12").ok());
}

TEST(BigIntTest, FromDecimalStringNegativeZeroIsZero) {
  BigInt zero = BigInt::FromDecimalString("-0").value();
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(zero.IsNegative());
}

TEST(BigIntTest, AdditionSmall) {
  EXPECT_EQ((BigInt(2) + BigInt(3)).ToInt64(), 5);
  EXPECT_EQ((BigInt(-2) + BigInt(3)).ToInt64(), 1);
  EXPECT_EQ((BigInt(2) + BigInt(-3)).ToInt64(), -1);
  EXPECT_EQ((BigInt(-2) + BigInt(-3)).ToInt64(), -5);
  EXPECT_TRUE((BigInt(7) + BigInt(-7)).IsZero());
}

TEST(BigIntTest, AdditionCarryChain) {
  BigInt almost = BigInt::FromDecimalString("99999999999999999999").value();
  EXPECT_EQ((almost + BigInt(1)).ToDecimalString(), "100000000000000000000");
}

TEST(BigIntTest, SubtractionBorrowChain) {
  BigInt big = BigInt::FromDecimalString("100000000000000000000").value();
  EXPECT_EQ((big - BigInt(1)).ToDecimalString(), "99999999999999999999");
}

TEST(BigIntTest, MultiplicationMatchesKnownProduct) {
  BigInt a = BigInt::FromDecimalString("123456789123456789").value();
  BigInt b = BigInt::FromDecimalString("987654321987654321").value();
  EXPECT_EQ((a * b).ToDecimalString(), "121932631356500531347203169112635269");
}

TEST(BigIntTest, MultiplicationSigns) {
  EXPECT_EQ((BigInt(-3) * BigInt(4)).ToInt64(), -12);
  EXPECT_EQ((BigInt(-3) * BigInt(-4)).ToInt64(), 12);
  EXPECT_TRUE((BigInt(-3) * BigInt(0)).IsZero());
}

TEST(BigIntTest, DivModSmall) {
  BigInt::DivModResult r = BigInt(17).DivMod(BigInt(5));
  EXPECT_EQ(r.quotient.ToInt64(), 3);
  EXPECT_EQ(r.remainder.ToInt64(), 2);
}

TEST(BigIntTest, DivModTruncatesTowardZero) {
  // C++ semantics: (-17)/5 == -3 rem -2; 17/(-5) == -3 rem 2.
  EXPECT_EQ((BigInt(-17) / BigInt(5)).ToInt64(), -3);
  EXPECT_EQ((BigInt(-17) % BigInt(5)).ToInt64(), -2);
  EXPECT_EQ((BigInt(17) / BigInt(-5)).ToInt64(), -3);
  EXPECT_EQ((BigInt(17) % BigInt(-5)).ToInt64(), 2);
}

TEST(BigIntTest, DivModMultiLimb) {
  BigInt numerator =
      BigInt::FromDecimalString("121932631356500531347203169112635269")
          .value();
  BigInt divisor = BigInt::FromDecimalString("987654321987654321").value();
  BigInt::DivModResult r = numerator.DivMod(divisor);
  EXPECT_EQ(r.quotient.ToDecimalString(), "123456789123456789");
  EXPECT_TRUE(r.remainder.IsZero());
}

TEST(BigIntTest, DivModRandomizedReconstruction) {
  // quotient * divisor + remainder == dividend, and |remainder| < |divisor|.
  Rng rng(20240701);
  for (int i = 0; i < 500; ++i) {
    BigInt dividend = BigInt::FromUint64(rng.NextUint64()) *
                          BigInt::FromUint64(rng.NextUint64()) +
                      BigInt::FromUint64(rng.NextUint64());
    BigInt divisor = BigInt::FromUint64(rng.NextUint64() | 1);
    if (rng.NextBernoulli(0.5)) dividend = dividend.Negated();
    if (rng.NextBernoulli(0.5)) divisor = divisor.Negated();
    BigInt::DivModResult r = dividend.DivMod(divisor);
    EXPECT_EQ((r.quotient * divisor + r.remainder).Compare(dividend), 0);
    EXPECT_LT(r.remainder.Abs().Compare(divisor.Abs()), 0);
  }
}

TEST(BigIntTest, DivModStressAlgorithmDAddBack) {
  // Divisors with a maximal top limb exercise the rare "add back" branch.
  BigInt b32 = BigInt::TwoPow(32);
  BigInt u = BigInt::TwoPow(96) - BigInt(1);
  BigInt v = BigInt::TwoPow(64) - BigInt(1);
  BigInt::DivModResult r = u.DivMod(v);
  EXPECT_EQ(r.quotient.ToDecimalString(), b32.ToDecimalString());
  EXPECT_EQ(r.remainder.ToDecimalString(),
            (b32 - BigInt(1)).ToDecimalString());
}

TEST(BigIntTest, CompareOrdersMixedSigns) {
  std::vector<BigInt> ordered = {
      BigInt::FromDecimalString("-100000000000000000000").value(),
      BigInt(-5), BigInt(0), BigInt(3),
      BigInt::FromDecimalString("100000000000000000000").value()};
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (size_t j = 0; j < ordered.size(); ++j) {
      EXPECT_EQ(ordered[i] < ordered[j], i < j);
      EXPECT_EQ(ordered[i] == ordered[j], i == j);
    }
  }
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(7)).ToInt64(), 7);
  EXPECT_EQ(BigInt::Gcd(BigInt(7), BigInt(0)).ToInt64(), 7);
  EXPECT_TRUE(BigInt::Gcd(BigInt(0), BigInt(0)).IsZero());
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
}

TEST(BigIntTest, GcdLargeCoprime) {
  // 2^89 - 1 is a Mersenne prime; gcd with 3^50 is 1.
  BigInt mersenne = BigInt::TwoPow(89) - BigInt(1);
  BigInt power_of_three = BigInt::Pow(BigInt(3), 50);
  EXPECT_TRUE(BigInt::Gcd(mersenne, power_of_three).IsOne());
}

TEST(BigIntTest, LcmBasics) {
  EXPECT_EQ(BigInt::Lcm(BigInt(4), BigInt(6)).ToInt64(), 12);
  EXPECT_TRUE(BigInt::Lcm(BigInt(0), BigInt(6)).IsZero());
  EXPECT_EQ(BigInt::Lcm(BigInt(7), BigInt(7)).ToInt64(), 7);
}

TEST(BigIntTest, PowMatchesRepeatedMultiplication) {
  EXPECT_EQ(BigInt::Pow(BigInt(2), 10).ToInt64(), 1024);
  EXPECT_EQ(BigInt::Pow(BigInt(10), 0).ToInt64(), 1);
  EXPECT_EQ(BigInt::Pow(BigInt(0), 0).ToInt64(), 1);
  EXPECT_TRUE(BigInt::Pow(BigInt(0), 3).IsZero());
  EXPECT_EQ(BigInt::Pow(BigInt(-2), 3).ToInt64(), -8);
  EXPECT_EQ(BigInt::Pow(BigInt(3), 40).ToDecimalString(),
            "12157665459056928801");
}

TEST(BigIntTest, TwoPowAndBitLength) {
  for (uint32_t e : {0u, 1u, 31u, 32u, 33u, 64u, 100u}) {
    BigInt p = BigInt::TwoPow(e);
    EXPECT_EQ(p.BitLength(), e + 1) << e;
    EXPECT_TRUE(p.TestBit(e));
    EXPECT_FALSE(p.TestBit(e + 1));
    if (e > 0) {
      EXPECT_FALSE(p.TestBit(e - 1));
    }
  }
}

TEST(BigIntTest, ShiftsRoundTrip) {
  BigInt value = BigInt::FromDecimalString("123456789123456789").value();
  for (size_t bits : {0u, 1u, 13u, 32u, 65u}) {
    EXPECT_EQ(value.ShiftLeft(bits).ShiftRight(bits).Compare(value), 0)
        << bits;
  }
  EXPECT_EQ(BigInt(5).ShiftLeft(3).ToInt64(), 40);
  EXPECT_EQ(BigInt(40).ShiftRight(3).ToInt64(), 5);
  EXPECT_EQ(BigInt(41).ShiftRight(3).ToInt64(), 5);
  EXPECT_TRUE(BigInt(1).ShiftRight(1).IsZero());
}

TEST(BigIntTest, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigInt(1000).ToDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(BigInt(-1000).ToDouble(), -1000.0);
  BigInt huge = BigInt::TwoPow(100);
  EXPECT_DOUBLE_EQ(huge.ToDouble(), std::pow(2.0, 100));
}

TEST(BigIntTest, IsEven) {
  EXPECT_TRUE(BigInt(0).IsEven());
  EXPECT_TRUE(BigInt(2).IsEven());
  EXPECT_FALSE(BigInt(3).IsEven());
  EXPECT_FALSE(BigInt(-3).IsEven());
}

// Property sweep: ring axioms on random operands of mixed magnitude.
class BigIntPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntPropertyTest, RingAxiomsHold) {
  Rng rng(GetParam());
  auto random_bigint = [&rng]() {
    int limbs = static_cast<int>(rng.NextBelow(4)) + 1;
    BigInt value(0);
    for (int i = 0; i < limbs; ++i) {
      value = value.ShiftLeft(64) + BigInt::FromUint64(rng.NextUint64());
    }
    return rng.NextBernoulli(0.5) ? value.Negated() : value;
  };
  for (int i = 0; i < 50; ++i) {
    BigInt a = random_bigint();
    BigInt b = random_bigint();
    BigInt c = random_bigint();
    EXPECT_EQ((a + b).Compare(b + a), 0);
    EXPECT_EQ((a * b).Compare(b * a), 0);
    EXPECT_EQ(((a + b) + c).Compare(a + (b + c)), 0);
    EXPECT_EQ(((a * b) * c).Compare(a * (b * c)), 0);
    EXPECT_EQ((a * (b + c)).Compare(a * b + a * c), 0);
    EXPECT_TRUE((a - a).IsZero());
    EXPECT_EQ((a + BigInt(0)).Compare(a), 0);
    EXPECT_EQ((a * BigInt(1)).Compare(a), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// Property sweep: gcd really divides and is maximal w.r.t. common divisors.
class BigIntGcdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntGcdPropertyTest, GcdDividesAndAbsorbsCommonFactor) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::FromUint64(rng.NextUint64());
    BigInt b = BigInt::FromUint64(rng.NextUint64());
    BigInt k = BigInt::FromUint64(rng.NextBelow(1000) + 1);
    BigInt g = BigInt::Gcd(a * k, b * k);
    EXPECT_TRUE(((a * k) % g).IsZero());
    EXPECT_TRUE(((b * k) % g).IsZero());
    // k divides every common divisor bound: gcd(ak, bk) == k * gcd(a, b).
    EXPECT_EQ(g.Compare(k * BigInt::Gcd(a, b)), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntGcdPropertyTest,
                         ::testing::Values(7u, 11u, 19u, 23u));

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

TEST(BigIntBoundaryTest, LimbBoundaryArithmetic) {
  // Values straddling the 32- and 64-bit limb boundaries.
  BigInt b32 = BigInt::TwoPow(32);
  BigInt b64 = BigInt::TwoPow(64);
  EXPECT_EQ((b32 - BigInt(1)).ToDecimalString(), "4294967295");
  EXPECT_EQ(((b32 - BigInt(1)) + BigInt(1)).Compare(b32), 0);
  EXPECT_EQ((b32 * b32).Compare(b64), 0);
  EXPECT_EQ((b64 / b32).Compare(b32), 0);
  EXPECT_TRUE((b64 % b32).IsZero());
  EXPECT_EQ(((b64 + BigInt(5)) % b32).ToInt64(), 5);
}

TEST(BigIntBoundaryTest, SubtractionAcrossLimbBorrow) {
  BigInt b64 = BigInt::TwoPow(64);
  BigInt result = b64 - BigInt(1);
  EXPECT_EQ(result.ToDecimalString(), "18446744073709551615");
  EXPECT_EQ(result.BitLength(), 64u);
  EXPECT_EQ((b64 - b64 + BigInt(0)).Sign(), 0);
}

TEST(BigIntBoundaryTest, DivModQuotientDigitEstimationStress) {
  // Divisors chosen to force maximal qhat corrections in algorithm D.
  for (uint32_t top : {0x80000000u, 0x80000001u, 0xffffffffu}) {
    BigInt v = (BigInt::FromUint64(top).ShiftLeft(32)) + BigInt(1);
    BigInt u = v * v + (v - BigInt(1));
    BigInt::DivModResult r = u.DivMod(v);
    EXPECT_EQ(r.quotient.Compare(v), 0) << top;
    EXPECT_EQ(r.remainder.Compare(v - BigInt(1)), 0) << top;
  }
}

TEST(BigIntBoundaryTest, PowersOfTenRoundTrip) {
  BigInt value(1);
  std::string expected = "1";
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(value.ToDecimalString(), expected);
    EXPECT_EQ(BigInt::FromDecimalString(expected)->Compare(value), 0);
    value *= BigInt(10);
    expected += "0";
  }
}

}  // namespace
}  // namespace qrel
