#include "qrel/datalog/analyze.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qrel {
namespace {

DatalogProgram MustParse(const std::string& text) {
  StatusOr<DatalogProgram> result = ParseDatalogProgram(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

Vocabulary TestVocabulary() {
  Vocabulary vocabulary;
  vocabulary.AddRelation("E", 2);
  vocabulary.AddRelation("Node", 1);
  return vocabulary;
}

std::vector<Diagnostic> WithCheck(const std::vector<Diagnostic>& diagnostics,
                                  const std::string& check_id) {
  std::vector<Diagnostic> matching;
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.check_id == check_id) {
      matching.push_back(diagnostic);
    }
  }
  return matching;
}

TEST(DatalogAnalyzeTest, CleanProgram) {
  Vocabulary vocabulary = TestVocabulary();
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("Path(x, y) :- E(x, y).\n"
                "Path(x, z) :- Path(x, y), E(y, z)."),
      &vocabulary, "Path");
  EXPECT_TRUE(analysis.diagnostics.empty());
  EXPECT_FALSE(analysis.has_errors());
}

TEST(DatalogAnalyzeTest, UnknownPredicate) {
  Vocabulary vocabulary = TestVocabulary();
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("P(x) :- Edge(x, y)."), &vocabulary);
  std::vector<Diagnostic> errors =
      WithCheck(analysis.diagnostics, "unknown-predicate");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("Edge"), std::string::npos);
  EXPECT_TRUE(errors[0].range.valid());
}

TEST(DatalogAnalyzeTest, ArityMismatch) {
  Vocabulary vocabulary = TestVocabulary();
  // E used with 1 argument; also an IDB used at two arities.
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("P(x) :- E(x).\n"
                "Q(x) :- P(x, x), E(x, x)."),
      &vocabulary);
  EXPECT_EQ(WithCheck(analysis.diagnostics, "arity-mismatch").size(), 2u);
}

TEST(DatalogAnalyzeTest, IdbEdbClash) {
  Vocabulary vocabulary = TestVocabulary();
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("E(x, y) :- Node(x), Node(y)."), &vocabulary);
  EXPECT_EQ(WithCheck(analysis.diagnostics, "idb-edb-clash").size(), 1u);
}

TEST(DatalogAnalyzeTest, UnboundHeadVariable) {
  Vocabulary vocabulary = TestVocabulary();
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("P(x, y) :- Node(x)."), &vocabulary);
  std::vector<Diagnostic> errors =
      WithCheck(analysis.diagnostics, "unbound-head-variable");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("'y'"), std::string::npos);
}

TEST(DatalogAnalyzeTest, UnsafeNegatedVariable) {
  Vocabulary vocabulary = TestVocabulary();
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("P(x) :- Node(x), !E(x, y)."), &vocabulary);
  std::vector<Diagnostic> errors =
      WithCheck(analysis.diagnostics, "unsafe-variable");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("'y'"), std::string::npos);
}

TEST(DatalogAnalyzeTest, UnstratifiableCycle) {
  Vocabulary vocabulary = TestVocabulary();
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("P(x) :- Node(x), !Q(x).\n"
                "Q(x) :- Node(x), !P(x)."),
      &vocabulary);
  EXPECT_FALSE(
      WithCheck(analysis.diagnostics, "unstratifiable-cycle").empty());

  // Stratified negation is fine.
  DatalogAnalysis stratified = AnalyzeDatalogProgram(
      MustParse("Reach(x) :- E(x, y).\n"
                "Isolated(x) :- Node(x), !Reach(x)."),
      &vocabulary);
  EXPECT_TRUE(
      WithCheck(stratified.diagnostics, "unstratifiable-cycle").empty());
}

TEST(DatalogAnalyzeTest, DuplicateRule) {
  Vocabulary vocabulary = TestVocabulary();
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("P(x) :- Node(x).\n"
                "P(x)    :- Node(x)."),
      &vocabulary);
  std::vector<Diagnostic> warnings =
      WithCheck(analysis.diagnostics, "duplicate-rule");
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].severity, DiagnosticSeverity::kWarning);
  EXPECT_FALSE(analysis.has_errors());
}

TEST(DatalogAnalyzeTest, UnreachablePredicate) {
  Vocabulary vocabulary = TestVocabulary();
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("Path(x, y) :- E(x, y).\n"
                "Orphan(x) :- Node(x)."),
      &vocabulary, "Path");
  std::vector<Diagnostic> notes =
      WithCheck(analysis.diagnostics, "unreachable-predicate");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].message.find("Orphan"), std::string::npos);

  // Without a query predicate the check is skipped.
  DatalogAnalysis unscoped = AnalyzeDatalogProgram(
      MustParse("Path(x, y) :- E(x, y).\n"
                "Orphan(x) :- Node(x)."),
      &vocabulary);
  EXPECT_TRUE(
      WithCheck(unscoped.diagnostics, "unreachable-predicate").empty());
}

TEST(DatalogAnalyzeTest, NoVocabularySkipsEdbChecks) {
  DatalogAnalysis analysis = AnalyzeDatalogProgram(
      MustParse("P(x) :- Edge(x, y)."), nullptr);
  EXPECT_TRUE(WithCheck(analysis.diagnostics, "unknown-predicate").empty());
}

TEST(DatalogAnalyzeTest, RulesCarryRanges) {
  DatalogProgram program = MustParse("Path(x, y) :- E(x, y).");
  ASSERT_EQ(program.rules.size(), 1u);
  const DatalogRule& rule = program.rules[0];
  EXPECT_TRUE(rule.range.valid());
  EXPECT_EQ(rule.range.begin, 0u);
  EXPECT_EQ(rule.range.end, 22u);  // up to (not including) the final '.'
  EXPECT_TRUE(rule.head.range.valid());
  EXPECT_EQ(rule.head.range.begin, 0u);
  ASSERT_EQ(rule.body.size(), 1u);
  EXPECT_TRUE(rule.body[0].atom.range.valid());
}

TEST(DatalogAnalyzeTest, ParseErrorFillsDiagnostic) {
  Diagnostic diagnostic;
  StatusOr<DatalogProgram> result =
      ParseDatalogProgram("P(x) :- Node(x)", &diagnostic);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(diagnostic.check_id, "syntax-error");
  EXPECT_TRUE(diagnostic.range.valid());
}

}  // namespace
}  // namespace qrel
