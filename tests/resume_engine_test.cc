// Crash-recovery suite: for every algorithm family, kill a checkpointed
// run at a mid-loop fault site (or a tripped work budget), resume from the
// snapshot on disk, and assert the resumed run's report is bit-identical
// to an uninterrupted run — same estimate, same sample count, same work
// counter. Also the refusal paths: a parameter change or a corrupt
// snapshot must fail typed, never silently restart from zero.

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/core/absolute.h"
#include "qrel/datalog/eval.h"
#include "qrel/datalog/program.h"
#include "qrel/engine/engine.h"
#include "qrel/logic/parser.h"
#include "qrel/prob/text_format.h"
#include "qrel/propositional/dnf.h"
#include "qrel/propositional/exact.h"
#include "qrel/propositional/karp_luby.h"
#include "qrel/propositional/naive_mc.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
absent E 2 0 err=1/5
)";

constexpr char kDatalogProgram[] =
    "Path(x, y) :- E(x, y).\n"
    "Path(x, z) :- Path(x, y), E(y, z).";

UnreliableDatabase MakeDatabase() {
  StatusOr<UnreliableDatabase> database = ParseUdb(kUdbText);
  EXPECT_TRUE(database.ok()) << database.status().ToString();
  return std::move(database).value();
}

std::string SnapshotPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());  // no stale state from an earlier test run
  return path;
}

// Field-by-field exact comparison; doubles compare bit-for-bit (EXPECT_EQ
// on doubles is exact equality, which is the whole point of the suite).
void ExpectIdenticalReports(const EngineReport& resumed,
                            const EngineReport& baseline) {
  EXPECT_EQ(resumed.method, baseline.method);
  EXPECT_EQ(resumed.is_exact, baseline.is_exact);
  EXPECT_EQ(resumed.reliability, baseline.reliability);
  EXPECT_EQ(resumed.expected_error, baseline.expected_error);
  EXPECT_EQ(resumed.samples, baseline.samples);
  EXPECT_EQ(resumed.budget_spent, baseline.budget_spent);
  EXPECT_EQ(resumed.degraded, baseline.degraded);
  EXPECT_EQ(resumed.partial, baseline.partial);
  ASSERT_EQ(resumed.exact_reliability.has_value(),
            baseline.exact_reliability.has_value());
  if (baseline.exact_reliability.has_value()) {
    EXPECT_EQ(*resumed.exact_reliability, *baseline.exact_reliability);
  }
}

class ResumeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

// Kill-and-resume for an engine query: baseline (no checkpointer), then a
// checkpointed run killed by `fault_spec`, then a resumed run; the resumed
// report must match the baseline exactly.
void RunEngineKillResume(const std::string& query, const EngineOptions& base,
                         const std::string& fault_spec,
                         const std::string& snapshot_name,
                         bool datalog = false) {
  ReliabilityEngine engine(MakeDatabase());
  auto run = [&](RunContext* ctx) {
    EngineOptions options = base;
    options.run_context = ctx;
    return datalog ? engine.RunDatalog(kDatalogProgram, query, options)
                   : engine.Run(query, options);
  };

  RunContext baseline_ctx;
  StatusOr<EngineReport> baseline = run(&baseline_ctx);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = SnapshotPath(snapshot_name);
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(ArmFaultFromSpec(fault_spec).ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<EngineReport> killed = run(&ctx);
    ASSERT_FALSE(killed.ok()) << fault_spec << " did not interrupt the run";
    EXPECT_GT(checkpointer.writes(), 0u)
        << "no checkpoint was written before the fault at " << fault_spec;
    FaultInjector::Instance().Reset();
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(checkpointer.has_resume());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<EngineReport> resumed = run(&ctx);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(checkpointer.resume_consumed())
        << "the resumed run ignored the snapshot and restarted from zero";
    ExpectIdenticalReports(*resumed, *baseline);
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, ExactEnumerationResumesBitIdentical) {
  EngineOptions options;
  options.seed = 7;
  RunEngineKillResume("exists x y . E(x,y) & S(y) & S(x)", options,
                      "core.exact.world:5", "resume_exact.snapshot");
}

TEST_F(ResumeEngineTest, KarpLubyRungResumesBitIdentical) {
  EngineOptions options;
  options.seed = 7;
  options.force_approximate = true;
  options.epsilon = 0.3;
  options.delta = 0.3;
  options.fixed_samples = 64;
  RunEngineKillResume("exists x y . E(x,y) & S(y)", options,
                      "propositional.karp_luby.sample:20",
                      "resume_karp_luby.snapshot");
}

TEST_F(ResumeEngineTest, TupleLoopResumesBitIdentical) {
  // Open formula of arity 2: nine per-tuple sub-estimates under the
  // Cor 5.5 rung; the fault lands between tuples.
  EngineOptions options;
  options.seed = 7;
  options.force_approximate = true;
  options.epsilon = 0.3;
  options.delta = 0.3;
  options.fixed_samples = 16;
  RunEngineKillResume("E(x,y) & S(y)", options, "core.approx.tuple:5",
                      "resume_tuple.snapshot");
}

TEST_F(ResumeEngineTest, PaddedEstimatorResumesBitIdentical) {
  EngineOptions options;
  options.seed = 7;
  options.force_approximate = true;
  options.epsilon = 0.3;
  options.delta = 0.3;
  options.fixed_samples = 64;
  RunEngineKillResume("forall x . exists y . E(x,y) | S(x)", options,
                      "core.approx.padded_sample:7",
                      "resume_padded.snapshot");
}

TEST_F(ResumeEngineTest, DatalogExactResumesBitIdentical) {
  EngineOptions options;
  options.seed = 7;
  RunEngineKillResume("Path", options, "datalog.exact.world:3",
                      "resume_datalog_exact.snapshot", /*datalog=*/true);
}

TEST_F(ResumeEngineTest, DatalogPaddedResumesBitIdentical) {
  EngineOptions options;
  options.seed = 7;
  options.force_approximate = true;
  options.epsilon = 0.3;
  options.delta = 0.3;
  options.fixed_samples = 64;
  RunEngineKillResume("Path", options, "datalog.padded.world:5",
                      "resume_datalog_padded.snapshot", /*datalog=*/true);
}

// --- Direct algorithm-level kill/resume ------------------------------------

Dnf MakeTestDnf() {
  Dnf dnf(10);
  dnf.AddTerm({{0, true}, {1, false}});
  dnf.AddTerm({{2, true}, {3, true}, {4, false}});
  dnf.AddTerm({{5, false}, {9, true}});
  return dnf;
}

std::vector<Rational> UniformHalf(int variables) {
  return std::vector<Rational>(static_cast<size_t>(variables),
                               Rational::Half());
}

TEST_F(ResumeEngineTest, KarpLubyLoopResumesMidSample) {
  // Direct sampler call, so the Karp-Luby scope itself (not the Cor 5.5
  // tuple loop above it) owns the checkpoints and resumes mid-stream.
  Dnf dnf = MakeTestDnf();
  std::vector<Rational> probs = UniformHalf(10);
  KarpLubyOptions options;
  options.seed = 11;
  options.fixed_samples = 64;

  RunContext baseline_ctx;
  options.run_context = &baseline_ctx;
  StatusOr<KarpLubyResult> baseline = KarpLubyProbability(dnf, probs, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = SnapshotPath("resume_kl_direct.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(ArmFaultFromSpec("propositional.karp_luby.sample:20").ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    ASSERT_FALSE(KarpLubyProbability(dnf, probs, options).ok());
    EXPECT_GT(checkpointer.writes(), 0u);
    FaultInjector::Instance().Reset();
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    StatusOr<KarpLubyResult> resumed = KarpLubyProbability(dnf, probs, options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(checkpointer.resume_consumed());
    EXPECT_EQ(resumed->estimate, baseline->estimate);
    EXPECT_EQ(resumed->samples, baseline->samples);
    EXPECT_EQ(resumed->total_term_weight, baseline->total_term_weight);
    EXPECT_EQ(ctx.work_spent(), baseline_ctx.work_spent());
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, NaiveMcLoopResumesMidSample) {
  Dnf dnf = MakeTestDnf();
  std::vector<Rational> probs = UniformHalf(10);

  RunContext baseline_ctx;
  StatusOr<NaiveMcResult> baseline =
      NaiveMcProbability(dnf, probs, 64, /*seed=*/5, &baseline_ctx);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = SnapshotPath("resume_naive_mc.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(ArmFaultFromSpec("propositional.naive_mc.sample:20").ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    ASSERT_FALSE(NaiveMcProbability(dnf, probs, 64, 5, &ctx).ok());
    EXPECT_GT(checkpointer.writes(), 0u);
    FaultInjector::Instance().Reset();
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<NaiveMcResult> resumed =
        NaiveMcProbability(dnf, probs, 64, 5, &ctx);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(checkpointer.resume_consumed());
    EXPECT_EQ(resumed->estimate, baseline->estimate);
    EXPECT_EQ(resumed->hits, baseline->hits);
    EXPECT_EQ(resumed->samples, baseline->samples);
    EXPECT_EQ(ctx.work_spent(), baseline_ctx.work_spent());
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, BruteForceEnumerationResumesAfterBudgetTrip) {
  // 2^10 assignments; a 100-unit budget trips mid-enumeration. The resumed
  // run (unlimited budget) must land on the exact rational value, with the
  // total work equal to an uninterrupted governed run's.
  Dnf dnf = MakeTestDnf();
  std::vector<Rational> probs = UniformHalf(10);

  RunContext baseline_ctx;
  StatusOr<Rational> baseline =
      BruteForceDnfProbability(dnf, probs, &baseline_ctx);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = SnapshotPath("resume_brute_force.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx = RunContext::WithWorkBudget(100);
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<Rational> killed = BruteForceDnfProbability(dnf, probs, &ctx);
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);
    EXPECT_GT(checkpointer.writes(), 0u);
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<Rational> resumed = BruteForceDnfProbability(dnf, probs, &ctx);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(checkpointer.resume_consumed());
    EXPECT_EQ(*resumed, *baseline);
    EXPECT_EQ(ctx.work_spent(), baseline_ctx.work_spent());
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, BudgetTripFlushesAFinalCheckpointDespiteLongInterval) {
  // With a 24h checkpoint interval, no interval-gated write can ever fire
  // inside this test; the only snapshot comes from the forced flush when
  // the work budget is about to trip. That flush is what qrel_cli's SIGINT
  // handler and the server's drain checkpoint-abort depend on: without it
  // an interrupted long-interval run would lose all progress.
  Dnf dnf = MakeTestDnf();
  std::vector<Rational> probs = UniformHalf(10);

  RunContext baseline_ctx;
  StatusOr<Rational> baseline =
      BruteForceDnfProbability(dnf, probs, &baseline_ctx);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = SnapshotPath("resume_long_interval.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::hours(24));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx = RunContext::WithWorkBudget(100);
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<Rational> killed = BruteForceDnfProbability(dnf, probs, &ctx);
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(checkpointer.writes(), 1u)
        << "expected exactly the forced pre-trip flush";
  }
  {
    Checkpointer checkpointer(path, std::chrono::hours(24));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(checkpointer.has_resume());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<Rational> resumed = BruteForceDnfProbability(dnf, probs, &ctx);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(checkpointer.resume_consumed());
    EXPECT_EQ(*resumed, *baseline);
    EXPECT_EQ(ctx.work_spent(), baseline_ctx.work_spent());
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, AbsoluteMonteCarloResumesAfterBudgetTrip) {
  UnreliableDatabase db = MakeDatabase();
  // No uncertain diagonal atom exists, so no sampled world can flip the
  // answer: the falsifier always runs its full 200 samples.
  StatusOr<FormulaPtr> query = ParseFormula("exists x . E(x,x)");
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  RunContext baseline_ctx;
  StatusOr<AbsoluteReliabilityResult> baseline = AbsoluteReliabilityMonteCarlo(
      *query, db, /*samples=*/200, /*seed=*/13, &baseline_ctx);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = SnapshotPath("resume_absolute_mc.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx = RunContext::WithWorkBudget(40);
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<AbsoluteReliabilityResult> killed =
        AbsoluteReliabilityMonteCarlo(*query, db, 200, 13, &ctx);
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);
    EXPECT_GT(checkpointer.writes(), 0u);
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<AbsoluteReliabilityResult> resumed =
        AbsoluteReliabilityMonteCarlo(*query, db, 200, 13, &ctx);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(checkpointer.resume_consumed());
    EXPECT_EQ(resumed->absolutely_reliable, baseline->absolutely_reliable);
    EXPECT_EQ(resumed->worlds_checked, baseline->worlds_checked);
    EXPECT_EQ(resumed->witness.has_value(), baseline->witness.has_value());
    EXPECT_EQ(ctx.work_spent(), baseline_ctx.work_spent());
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, DatalogFixpointResumesMidRound) {
  // Direct fixpoint evaluation, so the fixpoint scope itself owns the
  // checkpoints (inside the engine a world loop claims first).
  UnreliableDatabase db = MakeDatabase();
  StatusOr<DatalogProgram> program = ParseDatalogProgram(kDatalogProgram);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  StatusOr<CompiledDatalog> compiled =
      CompiledDatalog::Compile(std::move(program).value(), db.vocabulary());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  StatusOr<DatalogResult> baseline = compiled->Eval(db.observed(), nullptr);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = SnapshotPath("resume_fixpoint.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(ArmFaultFromSpec("datalog.fixpoint.round:2").ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    ASSERT_FALSE(compiled->Eval(db.observed(), &ctx).ok());
    EXPECT_GT(checkpointer.writes(), 0u);
    FaultInjector::Instance().Reset();
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<DatalogResult> resumed = compiled->Eval(db.observed(), &ctx);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(checkpointer.resume_consumed());
    EXPECT_EQ(*resumed, *baseline);
  }
  std::remove(path.c_str());
}

// --- Refusal paths ----------------------------------------------------------

TEST_F(ResumeEngineTest, ChangedSeedRefusesToResume) {
  ReliabilityEngine engine(MakeDatabase());
  EngineOptions options;
  options.seed = 7;
  options.force_approximate = true;
  options.epsilon = 0.3;
  options.delta = 0.3;
  options.fixed_samples = 64;
  const std::string query = "exists x y . E(x,y) & S(y)";

  std::string path = SnapshotPath("resume_changed_seed.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(ArmFaultFromSpec("propositional.karp_luby.sample:20").ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    ASSERT_FALSE(engine.Run(query, options).ok());
    FaultInjector::Instance().Reset();
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    options.seed = 8;  // same algorithm, different RNG stream
    StatusOr<EngineReport> resumed = engine.Run(query, options);
    ASSERT_FALSE(resumed.ok())
        << "resumed with a different seed instead of refusing";
    EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, ChangedProbabilityRefusesToResume) {
  // Same universe, same relations, same five error entries — only one
  // probability differs (1/4 -> 1/3). The instance *shape* is identical,
  // so only a content-aware fingerprint can catch it.
  constexpr char kEditedUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/3
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
absent E 2 0 err=1/5
)";
  EngineOptions options;
  options.seed = 7;
  options.force_approximate = true;
  options.epsilon = 0.3;
  options.delta = 0.3;
  options.fixed_samples = 64;
  const std::string query = "exists x y . E(x,y) & S(y)";

  std::string path = SnapshotPath("resume_changed_prob.snapshot");
  {
    ReliabilityEngine engine(MakeDatabase());
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(ArmFaultFromSpec("propositional.karp_luby.sample:20").ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    ASSERT_FALSE(engine.Run(query, options).ok());
    FaultInjector::Instance().Reset();
  }
  {
    StatusOr<UnreliableDatabase> edited = ParseUdb(kEditedUdbText);
    ASSERT_TRUE(edited.ok()) << edited.status().ToString();
    ReliabilityEngine engine(std::move(edited).value());
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    StatusOr<EngineReport> resumed = engine.Run(query, options);
    ASSERT_FALSE(resumed.ok())
        << "resumed under an edited probability instead of refusing";
    EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, ChangedQueryRefusesToResume) {
  // E(y,x) instead of E(x,y): same operators, same relation arities, same
  // grounded DNF shape — a different query all the same.
  ReliabilityEngine engine(MakeDatabase());
  EngineOptions options;
  options.seed = 7;
  options.force_approximate = true;
  options.epsilon = 0.3;
  options.delta = 0.3;
  options.fixed_samples = 64;

  std::string path = SnapshotPath("resume_changed_query.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(ArmFaultFromSpec("propositional.karp_luby.sample:20").ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    ASSERT_FALSE(engine.Run("exists x y . E(x,y) & S(y)", options).ok());
    FaultInjector::Instance().Reset();
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    StatusOr<EngineReport> resumed =
        engine.Run("exists x y . E(y,x) & S(y)", options);
    ASSERT_FALSE(resumed.ok())
        << "resumed under a different query instead of refusing";
    EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, ChangedDatalogProgramRefusesToResume) {
  // Reversed edge in the recursive rule: same rule count, same arities,
  // same strata — a different program.
  ReliabilityEngine engine(MakeDatabase());
  EngineOptions options;
  options.seed = 7;

  std::string path = SnapshotPath("resume_changed_program.snapshot");
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(ArmFaultFromSpec("datalog.exact.world:3").ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    ASSERT_FALSE(engine.RunDatalog(kDatalogProgram, "Path", options).ok());
    FaultInjector::Instance().Reset();
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    options.run_context = &ctx;
    StatusOr<EngineReport> resumed = engine.RunDatalog(
        "Path(x, y) :- E(x, y).\nPath(x, z) :- Path(x, y), E(z, y).", "Path",
        options);
    ASSERT_FALSE(resumed.ok())
        << "resumed under an edited program instead of refusing";
    EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

// Forges a datalog.fixpoint snapshot whose container is pristine (valid
// checksum, the killed run's own kind and fingerprint) but whose IDB
// payload holds one bad tuple. The resume must degrade to kDataLoss —
// never index the tuple (UB).
void RunTamperedFixpointResume(const Tuple& forged_tuple,
                               const std::string& snapshot_name) {
  UnreliableDatabase db = MakeDatabase();
  StatusOr<DatalogProgram> program = ParseDatalogProgram(kDatalogProgram);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  StatusOr<CompiledDatalog> compiled =
      CompiledDatalog::Compile(std::move(program).value(), db.vocabulary());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  std::string path = SnapshotPath(snapshot_name);
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    ASSERT_TRUE(ArmFaultFromSpec("datalog.fixpoint.round:2").ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    ASSERT_FALSE(compiled->Eval(db.observed(), &ctx).ok());
    EXPECT_GT(checkpointer.writes(), 0u);
    FaultInjector::Instance().Reset();
  }
  {
    StatusOr<SnapshotData> genuine = ReadSnapshotFile(path);
    ASSERT_TRUE(genuine.ok()) << genuine.status().ToString();
    SnapshotData forged = std::move(genuine).value();  // keeps kind + fp
    SnapshotWriter w;
    w.U32(0);  // stratum
    w.U8(0);   // not mid-round
    w.U32(1);  // one predicate
    w.String("Path");
    w.U32(1);  // one tuple
    w.TupleVal(forged_tuple);
    forged.payload = w.TakeBytes();
    ASSERT_TRUE(WriteSnapshotFile(path, forged).ok());
  }
  {
    Checkpointer checkpointer(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(checkpointer.LoadForResume().ok());
    RunContext ctx;
    ctx.SetCheckpointer(&checkpointer);
    StatusOr<DatalogResult> resumed = compiled->Eval(db.observed(), &ctx);
    ASSERT_FALSE(resumed.ok()) << "restored a forged IDB tuple";
    EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss);
  }
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, TamperedIdbShortTupleFailsTyped) {
  // Path has arity 2; a 1-element tuple would make BodySatisfied read
  // candidate[1] out of bounds.
  RunTamperedFixpointResume(Tuple{0}, "resume_tampered_arity.snapshot");
}

TEST_F(ResumeEngineTest, TamperedIdbOutOfRangeElementFailsTyped) {
  // Universe is {0, 1, 2}; element 99 indexes past every bound downstream.
  RunTamperedFixpointResume(Tuple{0, 99}, "resume_tampered_range.snapshot");
}

TEST_F(ResumeEngineTest, ForeignSnapshotIsLeftUntouched) {
  // A snapshot belonging to a sampling run must not disturb (or be
  // disturbed by) an exact run: it stays on disk, unconsumed.
  ReliabilityEngine engine(MakeDatabase());

  std::string path = SnapshotPath("resume_foreign.snapshot");
  SnapshotData foreign;
  foreign.kind = "propositional.karp_luby.v1";
  foreign.fingerprint = 12345;
  foreign.work_spent = 99;
  ASSERT_TRUE(WriteSnapshotFile(path, foreign).ok());

  Checkpointer checkpointer(path, std::chrono::milliseconds(0));
  ASSERT_TRUE(checkpointer.LoadForResume().ok());
  RunContext ctx;
  ctx.SetCheckpointer(&checkpointer);
  EngineOptions options;
  options.seed = 7;
  options.run_context = &ctx;
  StatusOr<EngineReport> report =
      engine.Run("exists x y . E(x,y) & S(y)", options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(checkpointer.resume_consumed());
  // The run went to completion from scratch, ignoring the foreign state.
  EXPECT_EQ(ctx.work_spent(), report->budget_spent);
  std::remove(path.c_str());
}

TEST_F(ResumeEngineTest, CorruptSnapshotFailsResumeLoudly) {
  std::string path = SnapshotPath("resume_corrupt.snapshot");
  SnapshotData data;
  data.kind = "core.exact.v1";
  ASSERT_TRUE(WriteSnapshotFile(path, data).ok());
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(20);
    file.put('\x7f');
  }
  Checkpointer checkpointer(path, std::chrono::milliseconds(0));
  Status loaded = checkpointer.LoadForResume();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qrel
