#include "qrel/core/absolute.h"

#include <memory>

#include <gtest/gtest.h>

#include "qrel/core/reliability.h"
#include "qrel/logic/parser.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

UnreliableDatabase SmallDatabase() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("S", 1);
  Structure observed(vocabulary, 3);
  observed.AddFact(0, {0, 1});
  observed.AddFact(0, {1, 2});
  observed.AddFact(1, {0});
  return UnreliableDatabase(std::move(observed));
}

TEST(AbsoluteQfTest, CertainDatabaseIsAbsolutelyReliable) {
  UnreliableDatabase db = SmallDatabase();
  EXPECT_TRUE(*AbsolutelyReliableQuantifierFree(MustParse("S(x)"), db));
}

TEST(AbsoluteQfTest, UncertainRelevantAtomBreaksReliability) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  EXPECT_FALSE(*AbsolutelyReliableQuantifierFree(MustParse("S(x)"), db));
}

TEST(AbsoluteQfTest, IrrelevantUncertaintyKeepsReliability) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  // ψ only reads E; the S-noise does not matter.
  EXPECT_TRUE(*AbsolutelyReliableQuantifierFree(MustParse("E(x, y)"), db));
}

TEST(AbsoluteQfTest, TautologyAlwaysReliable) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 2));
  EXPECT_TRUE(
      *AbsolutelyReliableQuantifierFree(MustParse("S(x) | !S(x)"), db));
}

TEST(AbsoluteQfTest, RejectsQuantifiedQueries) {
  UnreliableDatabase db = SmallDatabase();
  EXPECT_FALSE(
      AbsolutelyReliableQuantifierFree(MustParse("exists x . S(x)"), db)
          .ok());
}

TEST(WitnessSearchTest, AgreesWithQfDecider) {
  for (bool add_noise : {false, true}) {
    UnreliableDatabase db = SmallDatabase();
    if (add_noise) {
      db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 3));
    }
    for (const char* text :
         {"S(x)", "E(x, y)", "S(x) | !S(x)", "S(x) & E(x, x)"}) {
      FormulaPtr query = MustParse(text);
      bool qf = *AbsolutelyReliableQuantifierFree(query, db);
      AbsoluteReliabilityResult witness =
          *AbsoluteReliabilityByWitness(query, db);
      EXPECT_EQ(qf, witness.absolutely_reliable) << text;
    }
  }
}

TEST(WitnessSearchTest, WitnessActuallyChangesTheAnswer) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 4));
  FormulaPtr query = MustParse("exists x . S(x)");
  AbsoluteReliabilityResult result =
      *AbsoluteReliabilityByWitness(query, db);
  ASSERT_FALSE(result.absolutely_reliable);
  ASSERT_TRUE(result.witness.has_value());
  // Verify the certificate: in the witness world the Boolean answer flips.
  WorldView view(db, *result.witness);
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  EXPECT_NE(compiled->Eval(view, {}),
            compiled->Eval(db.observed(), {}));
}

TEST(WitnessSearchTest, ExistentialRobustToIrrelevantFlips) {
  // ∃x S(x) stays true as long as S(0) is certain, whatever happens to
  // other atoms that only *add* S-elements.
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));
  db.SetErrorProbability(GroundAtom{1, {2}}, Rational(1, 2));
  FormulaPtr query = MustParse("exists x . S(x)");
  // Boolean query: flipping S(1)/S(2) to true never falsifies ∃x S(x),
  // but it *does* change the unary answer set of S(x).
  AbsoluteReliabilityResult boolean_result =
      *AbsoluteReliabilityByWitness(query, db);
  EXPECT_TRUE(boolean_result.absolutely_reliable);
  AbsoluteReliabilityResult unary_result =
      *AbsoluteReliabilityByWitness(MustParse("S(x)"), db);
  EXPECT_FALSE(unary_result.absolutely_reliable);
}

TEST(WitnessSearchTest, EarlyExitChecksFewWorlds) {
  UnreliableDatabase db = SmallDatabase();
  for (Element i = 0; i < 3; ++i) {
    db.SetErrorProbability(GroundAtom{1, {i}}, Rational(1, 2));
  }
  AbsoluteReliabilityResult result =
      *AbsoluteReliabilityByWitness(MustParse("S(x)"), db);
  EXPECT_FALSE(result.absolutely_reliable);
  EXPECT_LE(result.worlds_checked, 2u);
}

TEST(WitnessSearchTest, MatchesExactReliabilityBeingOne) {
  // AR_ψ ⟺ R_ψ = 1, cross-validated on several queries and noise levels.
  for (int noise = 0; noise < 3; ++noise) {
    UnreliableDatabase db = SmallDatabase();
    if (noise >= 1) {
      db.SetErrorProbability(GroundAtom{0, {1, 2}}, Rational(1, 5));
    }
    if (noise >= 2) {
      db.SetErrorProbability(GroundAtom{1, {2}}, Rational(1, 7));
    }
    for (const char* text :
         {"exists x . S(x)", "forall x . exists y . E(x, y) | S(x)",
          "E(x, y)"}) {
      FormulaPtr query = MustParse(text);
      ReliabilityReport exact = *ExactReliability(query, db);
      AbsoluteReliabilityResult witness =
          *AbsoluteReliabilityByWitness(query, db);
      EXPECT_EQ(exact.reliability.IsOne(), witness.absolutely_reliable)
          << text << " noise " << noise;
    }
  }
}

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

TEST(MonteCarloWitnessTest, FindsObviousCounterexample) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 2));
  AbsoluteReliabilityResult result =
      *AbsoluteReliabilityMonteCarlo(MustParse("S(x)"), db, 200, 9);
  EXPECT_FALSE(result.absolutely_reliable);
  ASSERT_TRUE(result.witness.has_value());
  // Verify the sampled certificate.
  WorldView view(db, *result.witness);
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(MustParse("S(x)"), db.vocabulary());
  bool differs = false;
  for (Element i = 0; i < 3; ++i) {
    differs = differs || compiled->Eval(view, {i}) !=
                             compiled->Eval(db.observed(), {i});
  }
  EXPECT_TRUE(differs);
}

TEST(MonteCarloWitnessTest, ReliableQueryStaysClean) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 2));
  // The tautology never changes its answer set.
  AbsoluteReliabilityResult result = *AbsoluteReliabilityMonteCarlo(
      MustParse("S(x) | !S(x)"), db, 500, 10);
  EXPECT_TRUE(result.absolutely_reliable);
  EXPECT_EQ(result.worlds_checked, 500u);
}

TEST(MonteCarloWitnessTest, WorksBeyondExhaustiveLimits) {
  // 100 uncertain atoms: exhaustive search refuses, sampling does not.
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("T", 1);
  Structure observed(vocabulary, 100);
  UnreliableDatabase db(std::move(observed));
  for (Element i = 0; i < 100; ++i) {
    db.SetErrorProbability(GroundAtom{0, {i}}, Rational(1, 2));
  }
  FormulaPtr query = *ParseFormula("exists x . T(x)");
  EXPECT_FALSE(AbsoluteReliabilityByWitness(query, db).ok());
  AbsoluteReliabilityResult result =
      *AbsoluteReliabilityMonteCarlo(query, db, 50, 11);
  EXPECT_FALSE(result.absolutely_reliable);  // some T(x) flips to true
}

TEST(MonteCarloWitnessTest, RejectsZeroSamples) {
  UnreliableDatabase db = SmallDatabase();
  EXPECT_FALSE(
      AbsoluteReliabilityMonteCarlo(MustParse("S(x)"), db, 0, 1).ok());
}

}  // namespace
}  // namespace qrel
