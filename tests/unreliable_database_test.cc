#include "qrel/prob/unreliable_database.h"

#include <map>
#include <memory>

#include <gtest/gtest.h>

namespace qrel {
namespace {

// A 3-element database with one binary relation E = {(0,1), (1,2)} and a
// unary relation S = {0}.
UnreliableDatabase SmallDatabase() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("S", 1);
  Structure observed(vocabulary, 3);
  observed.AddFact(0, {0, 1});
  observed.AddFact(0, {1, 2});
  observed.AddFact(1, {0});
  return UnreliableDatabase(std::move(observed));
}

TEST(UnreliableDatabaseTest, NuOfReliableAtomsIsObservedTruth) {
  UnreliableDatabase db = SmallDatabase();
  EXPECT_TRUE(db.NuTrue(GroundAtom{0, {0, 1}}).IsOne());
  EXPECT_TRUE(db.NuTrue(GroundAtom{0, {2, 2}}).IsZero());
}

TEST(UnreliableDatabaseTest, NuFlipsWithObservedTruth) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 4));  // observed true
  db.SetErrorProbability(GroundAtom{0, {2, 0}}, Rational(1, 4));  // observed false
  EXPECT_EQ(db.NuTrue(GroundAtom{0, {0, 1}}), Rational(3, 4));
  EXPECT_EQ(db.NuTrue(GroundAtom{0, {2, 0}}), Rational(1, 4));
}

TEST(UnreliableDatabaseTest, StatusOfClassifiesAtoms) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(0));

  int entry = -1;
  EXPECT_EQ(db.StatusOf(GroundAtom{0, {0, 1}}, &entry),
            UnreliableDatabase::AtomStatus::kUncertain);
  EXPECT_EQ(entry, 0);
  // Observed true with error 1: certainly false in the actual database.
  EXPECT_EQ(db.StatusOf(GroundAtom{1, {0}}, nullptr),
            UnreliableDatabase::AtomStatus::kCertainFalse);
  // Observed false with error 0.
  EXPECT_EQ(db.StatusOf(GroundAtom{1, {1}}, nullptr),
            UnreliableDatabase::AtomStatus::kCertainFalse);
  // Reliable atoms keep their observed truth.
  EXPECT_EQ(db.StatusOf(GroundAtom{0, {1, 2}}, nullptr),
            UnreliableDatabase::AtomStatus::kCertainTrue);
  EXPECT_EQ(db.StatusOf(GroundAtom{0, {2, 2}}, nullptr),
            UnreliableDatabase::AtomStatus::kCertainFalse);
}

TEST(UnreliableDatabaseTest, WorldProbabilitiesSumToOne) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 3));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 7));
  db.SetErrorProbability(GroundAtom{1, {2}}, Rational(2, 5));

  Rational total;
  int worlds = 0;
  db.ForEachWorld([&](const World& world, const Rational& probability) {
    ++worlds;
    total += probability;
    EXPECT_EQ(probability, db.WorldProbability(world));
  });
  EXPECT_EQ(worlds, 8);
  EXPECT_TRUE(total.IsOne());
}

TEST(UnreliableDatabaseTest, CertainFlipsAppearInEveryWorld) {
  UnreliableDatabase db = SmallDatabase();
  int flip_id = db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));

  db.ForEachWorld([&](const World& world, const Rational& probability) {
    EXPECT_TRUE(world.Flipped(flip_id));
    EXPECT_EQ(probability, Rational(1, 2));
  });
}

TEST(UnreliableDatabaseTest, ComputeGIsProductOfDenominators) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 6));
  db.SetErrorProbability(GroundAtom{1, {2}}, Rational(2, 5));
  EXPECT_EQ(db.ComputeG().ToInt64(), 4 * 6 * 5);
  // The paper's gcd loop computes lcm(4, 6, 5) = 60.
  EXPECT_EQ(db.ComputeGPaperLcm().ToInt64(), 60);
}

TEST(UnreliableDatabaseTest, PaperGcdLoopIsInsufficientErratum) {
  // Erratum witness: with μ-values 1/4, 3/7, 1/6 the paper's g = lcm = 84
  // does not scale the all-flipped world's probability (1/4)(3/7)(1/6) =
  // 1/56 to an integer, while the product-of-denominators g does.
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{0, {1, 2}}, Rational(3, 7));
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 6));

  BigInt paper_g = db.ComputeGPaperLcm();
  EXPECT_EQ(paper_g.ToInt64(), 84);
  bool paper_g_sufficient = true;
  db.ForEachWorld([&](const World&, const Rational& probability) {
    Rational scaled = probability * Rational(paper_g, BigInt(1));
    if (!scaled.denominator().IsOne()) {
      paper_g_sufficient = false;
    }
  });
  EXPECT_FALSE(paper_g_sufficient);
}

TEST(UnreliableDatabaseTest, GScalesEveryWorldProbabilityToAnInteger) {
  // The defining property of g in Theorem 4.2: ν(𝔅)·g ∈ ℕ for all 𝔅.
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{0, {1, 2}}, Rational(3, 7));
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 6));
  BigInt g = db.ComputeG();
  db.ForEachWorld([&](const World&, const Rational& probability) {
    Rational scaled = probability * Rational(g, BigInt(1));
    EXPECT_TRUE(scaled.denominator().IsOne()) << scaled.ToString();
  });
}

TEST(UnreliableDatabaseTest, ComputeGWithNoEntriesIsOne) {
  UnreliableDatabase db = SmallDatabase();
  EXPECT_TRUE(db.ComputeG().IsOne());
}

TEST(UnreliableDatabaseTest, MaterializeWorldAppliesFlips) {
  UnreliableDatabase db = SmallDatabase();
  int e01 = db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 2));
  int s1 = db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));

  World world(db.model().entry_count());
  world.SetFlipped(e01, true);  // observed true -> false
  world.SetFlipped(s1, true);   // observed false -> true
  Structure actual = db.MaterializeWorld(world);
  EXPECT_FALSE(actual.AtomTrue(0, {0, 1}));
  EXPECT_TRUE(actual.AtomTrue(0, {1, 2}));
  EXPECT_TRUE(actual.AtomTrue(1, {1}));

  // WorldView agrees with the materialized structure on every atom.
  WorldView view(db, world);
  for (Element i = 0; i < 3; ++i) {
    EXPECT_EQ(view.AtomTrue(1, {i}), actual.AtomTrue(1, {i}));
    for (Element j = 0; j < 3; ++j) {
      EXPECT_EQ(view.AtomTrue(0, {i, j}), actual.AtomTrue(0, {i, j}));
    }
  }
}

TEST(UnreliableDatabaseTest, SampleWorldFrequencyMatchesMu) {
  UnreliableDatabase db = SmallDatabase();
  int id = db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 4));
  int sure = db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1));

  Rng rng(2024);
  const int trials = 20000;
  int flips = 0;
  for (int i = 0; i < trials; ++i) {
    World world = db.SampleWorld(&rng);
    EXPECT_TRUE(world.Flipped(sure));
    flips += world.Flipped(id) ? 1 : 0;
  }
  double freq = static_cast<double>(flips) / trials;
  EXPECT_NEAR(freq, 0.25, 0.02);
}

TEST(UnreliableDatabaseTest, SampledWorldDistributionMatchesEnumeration) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 3));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 5));

  // Empirical distribution over the four worlds.
  Rng rng(7);
  std::map<std::pair<bool, bool>, int> counts;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    World world = db.SampleWorld(&rng);
    counts[{world.Flipped(0), world.Flipped(1)}]++;
  }
  db.ForEachWorld([&](const World& world, const Rational& probability) {
    double expected = probability.ToDouble();
    double actual =
        counts[{world.Flipped(0), world.Flipped(1)}] / double{trials};
    EXPECT_NEAR(actual, expected, 0.015);
  });
}

TEST(WorldTest, FlipCountAndEquality) {
  World a(130);
  World b(130);
  EXPECT_TRUE(a == b);
  a.SetFlipped(0, true);
  a.SetFlipped(64, true);
  a.SetFlipped(129, true);
  EXPECT_EQ(a.FlipCount(), 3);
  EXPECT_FALSE(a == b);
  a.SetFlipped(64, false);
  EXPECT_EQ(a.FlipCount(), 2);
  EXPECT_TRUE(a.Flipped(0));
  EXPECT_FALSE(a.Flipped(64));
  EXPECT_TRUE(a.Flipped(129));
}

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

std::shared_ptr<Vocabulary> MarginalVocabulary() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("R", 1);
  return vocabulary;
}

TEST(FromMarginalsTest, MostLikelyWorldBecomesObserved) {
  auto vocabulary = MarginalVocabulary();
  UnreliableDatabase db = UnreliableDatabase::FromMarginals(
      vocabulary, 4,
      {{GroundAtom{0, {0}}, Rational(3, 4)},   // likely true
       {GroundAtom{0, {1}}, Rational(1, 4)},   // likely false
       {GroundAtom{0, {2}}, Rational(1, 2)},   // tie -> observed true
       {GroundAtom{0, {3}}, Rational(1)}});    // certainly true
  EXPECT_TRUE(db.observed().AtomTrue(0, {0}));
  EXPECT_FALSE(db.observed().AtomTrue(0, {1}));
  EXPECT_TRUE(db.observed().AtomTrue(0, {2}));
  EXPECT_TRUE(db.observed().AtomTrue(0, {3}));
  // The marginals are reproduced exactly.
  EXPECT_EQ(db.NuTrue(GroundAtom{0, {0}}), Rational(3, 4));
  EXPECT_EQ(db.NuTrue(GroundAtom{0, {1}}), Rational(1, 4));
  EXPECT_EQ(db.NuTrue(GroundAtom{0, {2}}), Rational(1, 2));
  EXPECT_TRUE(db.NuTrue(GroundAtom{0, {3}}).IsOne());
  // Certain atoms carry no error entry with positive probability.
  EXPECT_TRUE(db.model().ErrorOf(GroundAtom{0, {3}}).IsZero());
}

TEST(FromMarginalsTest, ErrorsAreMinimized) {
  // μ = min(ν, 1-ν) ≤ 1/2 always: the observed database is the maximum
  // likelihood world.
  auto vocabulary = MarginalVocabulary();
  UnreliableDatabase db = UnreliableDatabase::FromMarginals(
      vocabulary, 2,
      {{GroundAtom{0, {0}}, Rational(9, 10)},
       {GroundAtom{0, {1}}, Rational(2, 5)}});
  EXPECT_EQ(db.model().ErrorOf(GroundAtom{0, {0}}), Rational(1, 10));
  EXPECT_EQ(db.model().ErrorOf(GroundAtom{0, {1}}), Rational(2, 5));
}

TEST(PositiveOnlyModelTest, DetectsRestrictedModel) {
  auto vocabulary = MarginalVocabulary();
  Structure observed(vocabulary, 3);
  observed.AddFact(0, {0});
  UnreliableDatabase db(std::move(observed));
  EXPECT_TRUE(db.IsPositiveOnlyModel());  // no errors at all
  db.SetErrorProbability(GroundAtom{0, {0}}, Rational(1, 4));
  EXPECT_TRUE(db.IsPositiveOnlyModel());  // error on a positive fact
  db.SetErrorProbability(GroundAtom{0, {1}}, Rational(0));
  EXPECT_TRUE(db.IsPositiveOnlyModel());  // zero error on negative is fine
  db.SetErrorProbability(GroundAtom{0, {2}}, Rational(1, 3));
  EXPECT_FALSE(db.IsPositiveOnlyModel());  // unreliable negative data
}

}  // namespace
}  // namespace qrel
