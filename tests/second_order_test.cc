#include "qrel/logic/second_order.h"

#include <memory>

#include <gtest/gtest.h>

#include "qrel/core/reliability.h"
#include "qrel/logic/parser.h"
#include "qrel/reductions/four_coloring.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

// 2-colourability (bipartiteness) as a Σ¹₁ sentence:
// ∃C ∀x∀y (E(x,y) → (C(x) ↔ ¬C(y))).
SecondOrderQuery TwoColorability() {
  SecondOrderQuery query;
  query.relation_variables = {{"C", 1}};
  query.matrix =
      MustParse("forall x y . E(x, y) -> (C(x) <-> !C(y))");
  return query;
}

Structure GraphStructure(const Graph& graph) {
  auto vocabulary = std::make_shared<Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  Structure structure(vocabulary, graph.vertex_count);
  for (const auto& [u, v] : graph.edges) {
    structure.AddFact(e, {static_cast<Element>(u), static_cast<Element>(v)});
    structure.AddFact(e, {static_cast<Element>(v), static_cast<Element>(u)});
  }
  return structure;
}

TEST(SecondOrderTest, CompileRejectsBadQueries) {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  // Free first-order variable.
  SecondOrderQuery open_query;
  open_query.relation_variables = {{"C", 1}};
  open_query.matrix = MustParse("C(x)");
  EXPECT_FALSE(CompiledSecondOrder::Compile(open_query, *vocabulary).ok());
  // Name collision with a base relation.
  SecondOrderQuery collision;
  collision.relation_variables = {{"E", 1}};
  collision.matrix = MustParse("exists x . E(x)");
  EXPECT_FALSE(CompiledSecondOrder::Compile(collision, *vocabulary).ok());
  // Matrix uses an unknown relation.
  SecondOrderQuery unknown;
  unknown.relation_variables = {{"C", 1}};
  unknown.matrix = MustParse("exists x . Zap(x)");
  EXPECT_FALSE(CompiledSecondOrder::Compile(unknown, *vocabulary).ok());
}

TEST(SecondOrderTest, BipartitenessOnKnownGraphs) {
  // Even cycles are bipartite, odd cycles and triangles are not.
  struct Case {
    Graph graph;
    bool bipartite;
  };
  const Case cases[] = {
      {CycleGraph(4), true},
      {CycleGraph(6), true},
      {CycleGraph(5), false},
      {CompleteGraph(3), false},
      {CompleteGraph(2), true},
  };
  for (const Case& c : cases) {
    Structure db = GraphStructure(c.graph);
    CompiledSecondOrder query = std::move(
        CompiledSecondOrder::Compile(TwoColorability(), db.vocabulary()))
        .value();
    StatusOr<bool> result = query.EvalSigma11(db);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*result, c.bipartite)
        << "V=" << c.graph.vertex_count << " E=" << c.graph.edges.size();
  }
}

TEST(SecondOrderTest, Pi11IsTheDual) {
  // ∀C ∃x∃y (E(x,y) ∧ (C(x) ↔ C(y))) — "every 2-colouring is improper" —
  // holds exactly on non-bipartite graphs... with one caveat: the
  // constant colourings already make the matrix true whenever an edge
  // exists, so restrict attention to the dual reading: Π¹₁ = ¬Σ¹₁(¬matrix)
  // is checked structurally instead.
  Structure db = GraphStructure(CycleGraph(5));
  SecondOrderQuery query;
  query.relation_variables = {{"C", 1}};
  query.matrix = MustParse("exists x y . E(x, y) & (C(x) <-> C(y))");
  CompiledSecondOrder compiled =
      std::move(CompiledSecondOrder::Compile(query, db.vocabulary())).value();
  // Σ¹₁: some colouring makes an edge monochromatic — trivially true here.
  EXPECT_TRUE(*compiled.EvalSigma11(db));
  // Π¹₁: every colouring makes some edge monochromatic — true iff the
  // graph is not 2-colourable; C5 is odd, so true.
  EXPECT_TRUE(*compiled.EvalPi11(db));
  // On an even cycle the proper 2-colouring defeats it.
  Structure even = GraphStructure(CycleGraph(4));
  CompiledSecondOrder compiled_even =
      std::move(CompiledSecondOrder::Compile(
                    SecondOrderQuery{{{"C", 1}},
                                     MustParse("exists x y . E(x, y) & "
                                               "(C(x) <-> C(y))")},
                    even.vocabulary()))
          .value();
  EXPECT_FALSE(*compiled_even.EvalPi11(even));
}

TEST(SecondOrderTest, GuessSpaceLimitEnforced) {
  Structure db = GraphStructure(CompleteGraph(6));  // 6 vertices
  SecondOrderQuery query;
  query.relation_variables = {{"R", 2}};  // 36 cells > 24
  query.matrix = MustParse("exists x y . R(x, y)");
  CompiledSecondOrder compiled =
      std::move(CompiledSecondOrder::Compile(query, db.vocabulary())).value();
  EXPECT_FALSE(compiled.EvalSigma11(db).ok());
}

TEST(SecondOrderReliabilityTest, BipartitenessUnderEdgeNoise) {
  // C4 with a possible chord 0-2: adding the chord keeps the graph
  // bipartite? 0-2 splits C4 into triangles 0-1-2 and 0-2-3: NOT bipartite.
  Graph c4 = CycleGraph(4);
  Structure observed = GraphStructure(c4);
  UnreliableDatabase db(std::move(observed));
  int e = *db.vocabulary().FindRelation("E");
  // The chord may exist (both directions flip together is not expressible
  // with independent atoms; use one direction only — the query reads both
  // but the matrix only needs one to create the odd cycle).
  db.SetErrorProbability(GroundAtom{e, {0, 2}}, Rational(1, 3));

  CompiledSecondOrder query = std::move(
      CompiledSecondOrder::Compile(TwoColorability(), db.vocabulary()))
      .value();
  ReliabilityReport report = *ExactSecondOrderReliability(query, db);
  // Observed: bipartite (true). With probability 1/3 the chord appears and
  // bipartiteness fails: H = 1/3.
  EXPECT_EQ(report.expected_error, Rational(1, 3));
  EXPECT_EQ(report.reliability, Rational(2, 3));
}

TEST(SecondOrderReliabilityTest, MatchesFirstOrderPathOnFoExpressibleQuery) {
  // For an FO-expressible property, the Σ¹₁ wrapper with zero relation
  // variables must reproduce ExactReliability.
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  Structure observed(vocabulary, 3);
  observed.AddFact(0, {0, 1});
  UnreliableDatabase db(std::move(observed));
  db.SetErrorProbability(GroundAtom{0, {1, 2}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 5));

  FormulaPtr sentence = MustParse("exists x y . E(x, y) & !E(y, x)");
  SecondOrderQuery wrapper;
  wrapper.matrix = sentence;
  CompiledSecondOrder compiled =
      std::move(CompiledSecondOrder::Compile(wrapper, db.vocabulary()))
          .value();
  ReliabilityReport so = *ExactSecondOrderReliability(compiled, db);
  ReliabilityReport fo = *ExactReliability(sentence, db);
  EXPECT_EQ(so.expected_error, fo.expected_error);
  EXPECT_EQ(so.reliability, fo.reliability);
}

}  // namespace
}  // namespace qrel
