#include "qrel/metafinite/text_format.h"

#include <gtest/gtest.h>

#include "qrel/metafinite/reliability.h"
#include "qrel/metafinite/term.h"

namespace qrel {
namespace {

constexpr char kSample[] = R"(
# payroll with OCR ambiguity
universe 3
function salary 1
function bonus 0

value salary 0 = 3200
value salary 1 = 4100.5
value salary 2 = 9/2
value bonus = 100

dist salary 0 : 3200 @ 9/10, 8200 @ 1/10
dist bonus : 100 @ 1/2, 0 @ 1/3, 250 @ 1/6
)";

TEST(MfdbTextFormatTest, ParsesSample) {
  StatusOr<UnreliableFunctionalDatabase> db = ParseMfdb(kSample);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->universe_size(), 3);
  int salary = *db->vocabulary().FindFunction("salary");
  int bonus = *db->vocabulary().FindFunction("bonus");
  EXPECT_EQ(db->observed().Value(salary, {0}), Rational(3200));
  EXPECT_EQ(db->observed().Value(salary, {1}), Rational(8201, 2));
  EXPECT_EQ(db->observed().Value(salary, {2}), Rational(9, 2));
  EXPECT_EQ(db->observed().Value(bonus, {}), Rational(100));
  EXPECT_EQ(db->uncertain_entry_count(), 2);
  const ValueDistribution& d = db->distribution(
      *db->FindUncertainEntry(FunctionEntry{bonus, {}}));
  ASSERT_EQ(d.outcomes.size(), 3u);
  EXPECT_EQ(d.outcomes[1].probability, Rational(1, 3));
}

TEST(MfdbTextFormatTest, RoundTripsThroughFormat) {
  UnreliableFunctionalDatabase original = *ParseMfdb(kSample);
  std::string serialized = FormatMfdb(original);
  StatusOr<UnreliableFunctionalDatabase> reparsed = ParseMfdb(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->universe_size(), original.universe_size());
  EXPECT_EQ(reparsed->uncertain_entry_count(),
            original.uncertain_entry_count());
  // Semantically identical: same reliability for a probe query.
  MTermPtr probe = MAdd(MSum("y", MApply("salary", {Term::Var("y")})),
                        MApply("bonus", {}));
  FunctionalReliabilityReport a = *ExactFunctionalReliability(probe, original);
  FunctionalReliabilityReport b = *ExactFunctionalReliability(probe, *reparsed);
  EXPECT_EQ(a.expected_error, b.expected_error);
}

TEST(MfdbTextFormatTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseMfdb("").ok());
  EXPECT_FALSE(ParseMfdb("function f 1\n").ok());  // no universe
  EXPECT_FALSE(ParseMfdb("universe 2\nvalue f 0 = 1\n").ok());  // unknown f
  EXPECT_FALSE(
      ParseMfdb("universe 2\nfunction f 1\nvalue f 5 = 1\n").ok());
  EXPECT_FALSE(
      ParseMfdb("universe 2\nfunction f 1\nvalue f 0 = abc\n").ok());
  EXPECT_FALSE(
      ParseMfdb("universe 2\nfunction f 1\nvalue f 0\n").ok());
  EXPECT_FALSE(ParseMfdb("universe 2\nbogus f\n").ok());
  EXPECT_FALSE(ParseMfdb("universe 2\nfunction f 1\nfunction f 2\n").ok());
}

TEST(MfdbTextFormatTest, RejectsBadDistributions) {
  // Probabilities not summing to 1.
  EXPECT_FALSE(ParseMfdb("universe 2\nfunction f 1\n"
                         "dist f 0 : 1 @ 1/2, 2 @ 1/3\n")
                   .ok());
  // Duplicate outcome values.
  EXPECT_FALSE(ParseMfdb("universe 2\nfunction f 1\n"
                         "dist f 0 : 1 @ 1/2, 1 @ 1/2\n")
                   .ok());
  // Odd token count.
  EXPECT_FALSE(ParseMfdb("universe 2\nfunction f 1\n"
                         "dist f 0 : 1 @ 1/2, 2\n")
                   .ok());
  // Errors report the offending line.
  Status status = ParseMfdb("universe 2\nfunction f 1\n"
                            "dist f 0 : 1 @ 1/2, 2 @ 1/3\n")
                      .status();
  EXPECT_NE(status.message().find("line 3"), std::string::npos);
}

TEST(MfdbTextFormatTest, LoadMfdbFileReportsMissingFile) {
  EXPECT_FALSE(LoadMfdbFile("/nonexistent/path.mfdb").ok());
}

}  // namespace
}  // namespace qrel
