#include "qrel/logic/ast.h"

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(TermTest, FactoriesAndToString) {
  Term x = Term::Var("x");
  EXPECT_TRUE(x.is_variable());
  EXPECT_EQ(x.ToString(), "x");

  Term c = Term::Const(3);
  EXPECT_FALSE(c.is_variable());
  EXPECT_EQ(c.ToString(), "#3");

  EXPECT_TRUE(x == Term::Var("x"));
  EXPECT_FALSE(x == Term::Var("y"));
  EXPECT_FALSE(x == c);
}

TEST(AstTest, AtomToString) {
  FormulaPtr atom = Atom("E", {Term::Var("x"), Term::Const(2)});
  EXPECT_EQ(atom->kind, FormulaKind::kAtom);
  EXPECT_EQ(atom->ToString(), "E(x, #2)");
}

TEST(AstTest, ConnectivesToString) {
  FormulaPtr a = Atom("S", {Term::Var("x")});
  FormulaPtr b = Atom("T", {Term::Var("y")});
  EXPECT_EQ(And(a, b)->ToString(), "(S(x) & T(y))");
  EXPECT_EQ(Or(a, b)->ToString(), "(S(x) | T(y))");
  EXPECT_EQ(Not(a)->ToString(), "!(S(x))");
  EXPECT_EQ(Implies(a, b)->ToString(), "(S(x) -> T(y))");
  EXPECT_EQ(Iff(a, b)->ToString(), "(S(x) <-> T(y))");
}

TEST(AstTest, SingletonAndOrCollapse) {
  FormulaPtr a = Atom("S", {Term::Var("x")});
  EXPECT_EQ(And(std::vector<FormulaPtr>{a}), a);
  EXPECT_EQ(Or(std::vector<FormulaPtr>{a}), a);
}

TEST(AstTest, QuantifierChains) {
  FormulaPtr body = Atom("E", {Term::Var("x"), Term::Var("y")});
  FormulaPtr formula = Exists(std::vector<std::string>{"x", "y"}, body);
  EXPECT_EQ(formula->kind, FormulaKind::kExists);
  EXPECT_EQ(formula->bound_variable, "x");
  EXPECT_EQ(formula->children[0]->kind, FormulaKind::kExists);
  EXPECT_EQ(formula->children[0]->bound_variable, "y");
}

TEST(AstTest, FreeVariablesInFirstAppearanceOrder) {
  // ψ(z, x) with y bound.
  FormulaPtr formula =
      And(Atom("E", {Term::Var("z"), Term::Var("x")}),
          Exists("y", Atom("E", {Term::Var("y"), Term::Var("x")})));
  EXPECT_EQ(formula->FreeVariables(),
            (std::vector<std::string>{"z", "x"}));
}

TEST(AstTest, BoundVariablesAreNotFree) {
  FormulaPtr sentence =
      ForAll("x", Exists("y", Atom("E", {Term::Var("x"), Term::Var("y")})));
  EXPECT_TRUE(sentence->FreeVariables().empty());
}

TEST(AstTest, ShadowedVariableStillFreeOutside) {
  // x free in the left conjunct, bound in the right one.
  FormulaPtr formula = And(Atom("S", {Term::Var("x")}),
                           Exists("x", Atom("T", {Term::Var("x")})));
  EXPECT_EQ(formula->FreeVariables(), (std::vector<std::string>{"x"}));
}

TEST(AstTest, SubstituteConstantReplacesFreeOccurrences) {
  FormulaPtr formula = And(Atom("S", {Term::Var("x")}),
                           Atom("E", {Term::Var("x"), Term::Var("y")}));
  FormulaPtr substituted = SubstituteConstant(formula, "x", 2);
  EXPECT_EQ(substituted->ToString(), "(S(#2) & E(#2, y))");
  // y untouched.
  EXPECT_EQ(substituted->FreeVariables(), (std::vector<std::string>{"y"}));
}

TEST(AstTest, SubstituteConstantRespectsShadowing) {
  FormulaPtr formula = And(Atom("S", {Term::Var("x")}),
                           Exists("x", Atom("T", {Term::Var("x")})));
  FormulaPtr substituted = SubstituteConstant(formula, "x", 1);
  EXPECT_EQ(substituted->ToString(), "(S(#1) & exists x . (T(x)))");
}

TEST(AstTest, SubstituteConstantNoOpSharesNodes) {
  FormulaPtr formula = Atom("S", {Term::Var("x")});
  EXPECT_EQ(SubstituteConstant(formula, "z", 0), formula);
}

}  // namespace
}  // namespace qrel
