#include "qrel/propositional/dnf.h"

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(DnfTest, EmptyFormulaIsFalse) {
  Dnf dnf(3);
  EXPECT_EQ(dnf.term_count(), 0);
  EXPECT_EQ(dnf.Width(), 0);
  EXPECT_FALSE(dnf.Eval({0, 0, 0}));
}

TEST(DnfTest, EmptyTermIsTrue) {
  Dnf dnf(2);
  EXPECT_TRUE(dnf.AddTerm({}));
  EXPECT_TRUE(dnf.Eval({0, 0}));
  EXPECT_TRUE(dnf.Eval({1, 1}));
}

TEST(DnfTest, AddTermNormalizes) {
  Dnf dnf(3);
  EXPECT_TRUE(dnf.AddTerm({{2, true}, {0, false}, {2, true}}));
  // Sorted by variable, duplicate merged.
  ASSERT_EQ(dnf.term(0).size(), 2u);
  EXPECT_EQ(dnf.term(0)[0].variable, 0);
  EXPECT_FALSE(dnf.term(0)[0].positive);
  EXPECT_EQ(dnf.term(0)[1].variable, 2);
}

TEST(DnfTest, AddTermRejectsContradiction) {
  Dnf dnf(2);
  EXPECT_FALSE(dnf.AddTerm({{0, true}, {0, false}}));
  EXPECT_EQ(dnf.term_count(), 0);
}

TEST(DnfTest, EvalAndSatisfiedCounts) {
  Dnf dnf(3);
  dnf.AddTerm({{0, true}, {1, true}});   // x0 & x1
  dnf.AddTerm({{1, false}});             // !x1
  dnf.AddTerm({{0, true}, {2, false}});  // x0 & !x2

  EXPECT_TRUE(dnf.Eval({1, 1, 1}));   // first term
  EXPECT_EQ(dnf.FirstSatisfiedTerm({1, 1, 1}), 0);
  EXPECT_EQ(dnf.SatisfiedTermCount({1, 1, 1}), 1);

  EXPECT_TRUE(dnf.Eval({1, 0, 0}));   // second and third
  EXPECT_EQ(dnf.FirstSatisfiedTerm({1, 0, 0}), 1);
  EXPECT_EQ(dnf.SatisfiedTermCount({1, 0, 0}), 2);

  EXPECT_FALSE(dnf.Eval({0, 1, 0}));
  EXPECT_EQ(dnf.FirstSatisfiedTerm({0, 1, 0}), -1);
  EXPECT_EQ(dnf.Width(), 2);
}

TEST(DnfTest, TermProbabilityIsProductOfLiteralProbabilities) {
  Dnf dnf(3);
  dnf.AddTerm({{0, true}, {2, false}});
  std::vector<Rational> prob = {Rational(1, 2), Rational(1, 3),
                                Rational(1, 5)};
  // Pr[x0] * Pr[!x2] = 1/2 * 4/5 = 2/5.
  EXPECT_EQ(dnf.TermProbability(0, prob), Rational(2, 5));
  dnf.AddTerm({});
  EXPECT_EQ(dnf.TermProbability(1, prob), Rational(1));
}

TEST(DnfTest, SampleAssignmentMatchesProbabilities) {
  std::vector<Rational> prob = {Rational(1, 4), Rational(1), Rational(0)};
  Rng rng(99);
  int hits0 = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    PropAssignment a = SampleAssignment(prob, &rng);
    hits0 += a[0];
    EXPECT_EQ(a[1], 1);
    EXPECT_EQ(a[2], 0);
  }
  EXPECT_NEAR(hits0 / static_cast<double>(trials), 0.25, 0.02);
}

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

TEST(SubsumptionTest, RemovesSupersets) {
  Dnf dnf(3);
  dnf.AddTerm({{0, true}});                        // x0
  dnf.AddTerm({{0, true}, {1, true}});             // x0 & x1 (subsumed)
  dnf.AddTerm({{1, false}, {2, true}});            // !x1 & x2
  dnf.AddTerm({{0, true}, {1, false}, {2, true}}); // subsumed by both
  EXPECT_EQ(dnf.RemoveSubsumedTerms(), 2);
  EXPECT_EQ(dnf.term_count(), 2);
}

TEST(SubsumptionTest, EqualTermsKeepOne) {
  Dnf dnf(2);
  dnf.AddTerm({{0, true}, {1, false}});
  dnf.AddTerm({{1, false}, {0, true}});  // same after normalization
  EXPECT_EQ(dnf.RemoveSubsumedTerms(), 1);
  EXPECT_EQ(dnf.term_count(), 1);
}

TEST(SubsumptionTest, EmptyTermSubsumesEverything) {
  Dnf dnf(2);
  dnf.AddTerm({{0, true}});
  dnf.AddTerm({});
  dnf.AddTerm({{1, false}});
  EXPECT_EQ(dnf.RemoveSubsumedTerms(), 2);
  ASSERT_EQ(dnf.term_count(), 1);
  EXPECT_TRUE(dnf.term(0).empty());
}

TEST(SubsumptionTest, IncomparableTermsUntouched) {
  Dnf dnf(3);
  dnf.AddTerm({{0, true}, {1, true}});
  dnf.AddTerm({{0, true}, {2, true}});
  dnf.AddTerm({{1, false}});
  EXPECT_EQ(dnf.RemoveSubsumedTerms(), 0);
  EXPECT_EQ(dnf.term_count(), 3);
}

}  // namespace
}  // namespace qrel
