#include "qrel/logic/analyze.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/logic/parser.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

Vocabulary TestVocabulary() {
  Vocabulary vocabulary;
  vocabulary.AddRelation("S", 1);
  vocabulary.AddRelation("E", 2);
  return vocabulary;
}

// The diagnostics carrying the given check id.
std::vector<Diagnostic> WithCheck(const std::vector<Diagnostic>& diagnostics,
                                  const std::string& check_id) {
  std::vector<Diagnostic> matching;
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.check_id == check_id) {
      matching.push_back(diagnostic);
    }
  }
  return matching;
}

TEST(AnalyzeTest, CleanQueryHasNoProblemDiagnostics) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("exists x . S(x) & E(x, y)"), &vocabulary);
  // The query is safe, so the only diagnostic is the safe-plan note —
  // which is informational and does not raise the lint exit code.
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics[0].check_id, "safe-plan");
  EXPECT_EQ(analysis.diagnostics[0].severity, DiagnosticSeverity::kNote);
  EXPECT_FALSE(analysis.has_errors());
  EXPECT_EQ(analysis.static_truth, StaticTruth::kUnknown);
  EXPECT_TRUE(analysis.arity_preserved);
  EXPECT_TRUE(analysis.safety.applicable);
  EXPECT_TRUE(analysis.safety.safe);
  EXPECT_EQ(LintExitCode(analysis.diagnostics), 0);
}

TEST(AnalyzeTest, UnknownPredicate) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("S(x) & Zap(x, y)"), &vocabulary);
  ASSERT_TRUE(analysis.has_errors());
  std::vector<Diagnostic> errors =
      WithCheck(analysis.diagnostics, "unknown-predicate");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].severity, DiagnosticSeverity::kError);
  // The range points at the atom, not the whole query.
  ASSERT_TRUE(errors[0].range.valid());
  EXPECT_EQ(errors[0].range.begin, 7u);
  EXPECT_EQ(LintExitCode(analysis.diagnostics), 2);
}

TEST(AnalyzeTest, ArityMismatch) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("E(x, y, z)"), &vocabulary);
  std::vector<Diagnostic> errors =
      WithCheck(analysis.diagnostics, "arity-mismatch");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("arity 2"), std::string::npos);
  EXPECT_NE(errors[0].message.find("3 argument"), std::string::npos);
}

TEST(AnalyzeTest, ReportsEveryErrorNotJustTheFirst) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("Zap(x) & E(x) & Pow(y)"), &vocabulary);
  EXPECT_EQ(WithCheck(analysis.diagnostics, "unknown-predicate").size(), 2u);
  EXPECT_EQ(WithCheck(analysis.diagnostics, "arity-mismatch").size(), 1u);
}

TEST(AnalyzeTest, NoVocabularySkipsVocabularyChecks) {
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("Zap(x) & E(x)"), nullptr);
  EXPECT_FALSE(analysis.has_errors());
}

TEST(AnalyzeTest, UnusedQuantifier) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("exists x . S(y)"), &vocabulary);
  std::vector<Diagnostic> warnings =
      WithCheck(analysis.diagnostics, "unused-quantifier");
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].severity, DiagnosticSeverity::kWarning);
  EXPECT_FALSE(analysis.has_errors());
  EXPECT_EQ(LintExitCode(analysis.diagnostics), 1);
}

TEST(AnalyzeTest, VacuousQuantifier) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("forall x . y = y"), &vocabulary);
  EXPECT_EQ(WithCheck(analysis.diagnostics, "vacuous-quantifier").size(),
            1u);
}

TEST(AnalyzeTest, ContradictoryAndTautologicalLiterals) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis and_analysis =
      AnalyzeFormula(MustParse("S(x) & !S(x)"), &vocabulary);
  EXPECT_EQ(
      WithCheck(and_analysis.diagnostics, "contradictory-literals").size(),
      1u);
  EXPECT_EQ(and_analysis.static_truth, StaticTruth::kUnsatisfiable);

  FormulaAnalysis or_analysis =
      AnalyzeFormula(MustParse("S(x) | !S(x)"), &vocabulary);
  EXPECT_EQ(
      WithCheck(or_analysis.diagnostics, "tautological-literals").size(),
      1u);
  EXPECT_EQ(or_analysis.static_truth, StaticTruth::kTautology);
}

TEST(AnalyzeTest, ConstantEqualityNote) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("S(x) & #1 = #2"), &vocabulary);
  std::vector<Diagnostic> notes =
      WithCheck(analysis.diagnostics, "constant-equality");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].severity, DiagnosticSeverity::kNote);
  // Notes alone do not raise the lint exit code.
  EXPECT_EQ(analysis.static_truth, StaticTruth::kUnsatisfiable);
}

TEST(AnalyzeTest, SimplifiedNote) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("!!(exists x . S(x))"), &vocabulary);
  EXPECT_EQ(WithCheck(analysis.diagnostics, "simplified").size(), 1u);
  EXPECT_EQ(analysis.original_class, QueryClass::kExistential);
  EXPECT_EQ(analysis.effective_class, QueryClass::kSafeConjunctive);
}

TEST(AnalyzeTest, ArityPreservation) {
  Vocabulary vocabulary = TestVocabulary();
  // Simplification drops the free variable y ("y = y" folds to true), so
  // the simplified formula must not replace the original.
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("S(x) & y = y"), &vocabulary);
  EXPECT_FALSE(analysis.arity_preserved);
  EXPECT_EQ(analysis.simplified->ToString(), "S(x)");

  FormulaAnalysis kept =
      AnalyzeFormula(MustParse("S(x) & x = x"), &vocabulary);
  EXPECT_TRUE(kept.arity_preserved);
}

TEST(AnalyzeTest, FirstErrorMessageNamesCheckAndLocation) {
  Vocabulary vocabulary = TestVocabulary();
  FormulaAnalysis analysis =
      AnalyzeFormula(MustParse("S(x) & Zap(x)"), &vocabulary);
  std::string message = FirstErrorMessage(analysis.diagnostics);
  EXPECT_NE(message.find("unknown-predicate"), std::string::npos);
  EXPECT_NE(message.find("at 7-"), std::string::npos);
  EXPECT_NE(message.find("Zap"), std::string::npos);
}

TEST(AnalyzeTest, EstimateCost) {
  CostEstimate cost =
      EstimateCost(MustParse("exists x . S(x) & E(x, y)"), 4, 10);
  EXPECT_EQ(cost.universe_size, 4);
  EXPECT_EQ(cost.arity, 1);     // free: y
  EXPECT_EQ(cost.variables, 2); // x and y
  EXPECT_DOUBLE_EQ(cost.answer_space, 4.0);
  EXPECT_DOUBLE_EQ(cost.grounding_size, 16.0);
  EXPECT_EQ(cost.uncertain_atoms, 10u);
  EXPECT_DOUBLE_EQ(cost.world_count, 1024.0);
}

TEST(AnalyzeTest, EstimateCostSaturatesToInfinity) {
  CostEstimate cost = EstimateCost(MustParse("S(x)"), 10, 4000);
  EXPECT_TRUE(std::isinf(cost.world_count));
}

TEST(ParserDiagnosticTest, SyntaxErrorFillsDiagnostic) {
  Diagnostic diagnostic;
  StatusOr<FormulaPtr> result = ParseFormula("S(x", &diagnostic);
  ASSERT_FALSE(result.ok());
  // The legacy Status message format is unchanged...
  EXPECT_NE(result.status().message().find("at position"),
            std::string::npos);
  // ...and the structured diagnostic carries the same information.
  EXPECT_EQ(diagnostic.check_id, "syntax-error");
  EXPECT_EQ(diagnostic.severity, DiagnosticSeverity::kError);
  EXPECT_TRUE(diagnostic.range.valid());
  EXPECT_FALSE(diagnostic.message.empty());
}

TEST(ParserDiagnosticTest, ParsedNodesCarryRanges) {
  FormulaPtr formula = MustParse("exists x . S(x) & E(x, y)");
  EXPECT_TRUE(formula->range.valid());
  EXPECT_EQ(formula->range.begin, 0u);
  EXPECT_EQ(formula->range.end, 25u);
  const Formula& conjunction = *formula->children[0];
  EXPECT_TRUE(conjunction.range.valid());
  EXPECT_EQ(conjunction.range.begin, 11u);
  const Formula& atom = *conjunction.children[0];
  EXPECT_EQ(atom.range.begin, 11u);
  EXPECT_EQ(atom.range.end, 15u);
}

TEST(DiagnosticTest, ToStringAndJson) {
  Diagnostic diagnostic =
      MakeError("arity-mismatch", "relation 'E' has arity 2",
                SourceRange{4, 11});
  EXPECT_EQ(diagnostic.ToString(),
            "error[arity-mismatch] at 4-11: relation 'E' has arity 2");
  EXPECT_EQ(diagnostic.ToJson(),
            "{\"severity\":\"error\",\"check\":\"arity-mismatch\","
            "\"begin\":4,\"end\":11,"
            "\"message\":\"relation 'E' has arity 2\"}");

  Diagnostic unlocated = MakeNote("simplified", "query \"simplifies\"");
  EXPECT_EQ(unlocated.ToString(),
            "note[simplified]: query \"simplifies\"");
  EXPECT_EQ(unlocated.ToJson(),
            "{\"severity\":\"note\",\"check\":\"simplified\","
            "\"message\":\"query \\\"simplifies\\\"\"}");

  EXPECT_EQ(DiagnosticsToJson({}), "[]");
  EXPECT_EQ(DiagnosticsToJson({unlocated, unlocated}).front(), '[');
}

}  // namespace
}  // namespace qrel
