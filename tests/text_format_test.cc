#include "qrel/prob/text_format.h"

#include <gtest/gtest.h>

namespace qrel {
namespace {

constexpr char kSample[] = R"(
# A small unreliable graph database.
universe 4
relation E 2
relation S 1

fact E 0 1
fact E 1 2 err=0.1
fact S 0 err=1/3
absent S 3 err=1/2
)";

TEST(TextFormatTest, ParsesSample) {
  StatusOr<UnreliableDatabase> db = ParseUdb(kSample);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->universe_size(), 4);
  EXPECT_EQ(db->vocabulary().relation_count(), 2);

  int e = *db->vocabulary().FindRelation("E");
  int s = *db->vocabulary().FindRelation("S");
  EXPECT_TRUE(db->observed().AtomTrue(e, {0, 1}));
  EXPECT_TRUE(db->observed().AtomTrue(e, {1, 2}));
  EXPECT_TRUE(db->observed().AtomTrue(s, {0}));
  EXPECT_FALSE(db->observed().AtomTrue(s, {3}));

  EXPECT_EQ(db->model().ErrorOf(GroundAtom{e, {0, 1}}), Rational(0));
  EXPECT_EQ(db->model().ErrorOf(GroundAtom{e, {1, 2}}), Rational(1, 10));
  EXPECT_EQ(db->model().ErrorOf(GroundAtom{s, {0}}), Rational(1, 3));
  EXPECT_EQ(db->model().ErrorOf(GroundAtom{s, {3}}), Rational(1, 2));
}

TEST(TextFormatTest, RoundTripsThroughFormat) {
  UnreliableDatabase original = *ParseUdb(kSample);
  std::string serialized = FormatUdb(original);
  StatusOr<UnreliableDatabase> reparsed = ParseUdb(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(reparsed->observed() == original.observed());
  EXPECT_EQ(reparsed->model().entry_count(), original.model().entry_count());
  for (int id = 0; id < original.model().entry_count(); ++id) {
    const GroundAtom& atom = original.model().atom(id);
    EXPECT_EQ(reparsed->model().ErrorOf(atom), original.model().error(id));
  }
}

TEST(TextFormatTest, RejectsMissingUniverse) {
  EXPECT_FALSE(ParseUdb("relation E 2\n").ok());
  EXPECT_FALSE(ParseUdb("").ok());
}

TEST(TextFormatTest, RejectsFactBeforeUniverse) {
  StatusOr<UnreliableDatabase> db =
      ParseUdb("relation E 2\nfact E 0 1\nuniverse 4\n");
  EXPECT_FALSE(db.ok());
}

TEST(TextFormatTest, RejectsUnknownRelation) {
  StatusOr<UnreliableDatabase> db = ParseUdb("universe 2\nfact E 0 1\n");
  EXPECT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("unknown relation"), std::string::npos);
}

TEST(TextFormatTest, RejectsArityMismatch) {
  EXPECT_FALSE(ParseUdb("universe 2\nrelation E 2\nfact E 0\n").ok());
  EXPECT_FALSE(ParseUdb("universe 2\nrelation E 2\nfact E 0 1 1\n").ok());
}

TEST(TextFormatTest, RejectsElementOutsideUniverse) {
  EXPECT_FALSE(ParseUdb("universe 2\nrelation E 2\nfact E 0 2\n").ok());
}

TEST(TextFormatTest, RejectsBadProbability) {
  EXPECT_FALSE(
      ParseUdb("universe 2\nrelation E 2\nfact E 0 1 err=3/2\n").ok());
  EXPECT_FALSE(
      ParseUdb("universe 2\nrelation E 2\nfact E 0 1 err=abc\n").ok());
}

TEST(TextFormatTest, RejectsDuplicateRelation) {
  EXPECT_FALSE(ParseUdb("universe 2\nrelation E 2\nrelation E 1\n").ok());
}

TEST(TextFormatTest, RejectsUnknownDirective) {
  EXPECT_FALSE(ParseUdb("universe 2\nbogus E 0\n").ok());
}

TEST(TextFormatTest, ErrorsReportLineNumbers) {
  Status status = ParseUdb("universe 2\nrelation E 2\nfact E 0 9\n").status();
  EXPECT_NE(status.message().find("line 3"), std::string::npos);
}

TEST(TextFormatTest, RejectsDuplicateFactForSameAtom) {
  Status status =
      ParseUdb("universe 2\nrelation E 2\nfact E 0 1 err=1/4\n"
               "fact E 0 1 err=1/8\n")
          .status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("line 4"), std::string::npos);
  EXPECT_NE(status.message().find("already declared"), std::string::npos);
}

TEST(TextFormatTest, RejectsFactThenAbsentForSameAtom) {
  EXPECT_FALSE(ParseUdb("universe 2\nrelation S 1\nfact S 0\n"
                        "absent S 0 err=1/3\n")
                   .ok());
  EXPECT_FALSE(ParseUdb("universe 2\nrelation S 1\nabsent S 0 err=1/3\n"
                        "absent S 0 err=1/4\n")
                   .ok());
}

TEST(TextFormatTest, CapsLineLength) {
  std::string huge_line((1 << 16) + 1, 'x');
  Status status = ParseUdb("universe 2\n" + huge_line + "\n").status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
  EXPECT_NE(status.message().find("exceeds"), std::string::npos);
}

TEST(TextFormatTest, CapsTokenCount) {
  std::string many_tokens = "fact";
  for (int i = 0; i < (1 << 12) + 1; ++i) {
    many_tokens += " 0";
  }
  Status status =
      ParseUdb("universe 2\nrelation E 2\n" + many_tokens + "\n").status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 3"), std::string::npos);
  EXPECT_NE(status.message().find("tokens"), std::string::npos);
}

TEST(TextFormatTest, CommentsAndBlankLinesIgnored) {
  StatusOr<UnreliableDatabase> db = ParseUdb(
      "# leading comment\n"
      "\n"
      "universe 2   # trailing comment\n"
      "relation P 0\n"
      "fact P err=1/2\n");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  int p = *db->vocabulary().FindRelation("P");
  EXPECT_TRUE(db->observed().AtomTrue(p, {}));
  EXPECT_EQ(db->model().ErrorOf(GroundAtom{p, {}}), Rational(1, 2));
}

}  // namespace
}  // namespace qrel

#include "qrel/util/rng.h"

namespace qrel {
namespace {

// Property sweep: random databases round-trip exactly through the text
// format (structure, errors, exact rational probabilities).
class TextFormatRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextFormatRoundTripTest, RandomDatabasesRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    auto vocabulary = std::make_shared<Vocabulary>();
    int e = vocabulary->AddRelation("E", 2);
    int s = vocabulary->AddRelation("S", 1);
    int p = vocabulary->AddRelation("P", 0);
    int n = 2 + static_cast<int>(rng.NextBelow(6));
    Structure observed(vocabulary, n);
    for (Element i = 0; i < n; ++i) {
      for (Element j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.3)) observed.AddFact(e, {i, j});
      }
      if (rng.NextBernoulli(0.4)) observed.AddFact(s, {i});
    }
    if (rng.NextBernoulli(0.5)) observed.AddFact(p, {});
    UnreliableDatabase db(std::move(observed));
    for (int a = 0; a < 6; ++a) {
      int64_t den = 2 + static_cast<int64_t>(rng.NextBelow(97));
      Rational mu(static_cast<int64_t>(
                      rng.NextBelow(static_cast<uint64_t>(den) + 1)),
                  den);
      GroundAtom atom =
          rng.NextBernoulli(0.5)
              ? GroundAtom{e,
                           {static_cast<Element>(rng.NextBelow(n)),
                            static_cast<Element>(rng.NextBelow(n))}}
              : GroundAtom{s, {static_cast<Element>(rng.NextBelow(n))}};
      db.SetErrorProbability(atom, mu);
    }

    StatusOr<UnreliableDatabase> reparsed = ParseUdb(FormatUdb(db));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_TRUE(reparsed->observed() == db.observed());
    // Every stored error probability survives exactly (zero-probability
    // entries may be dropped by the serializer; they are semantically
    // absent anyway).
    for (int id = 0; id < db.model().entry_count(); ++id) {
      EXPECT_EQ(reparsed->model().ErrorOf(db.model().atom(id)),
                db.model().error(id));
    }
    for (int id = 0; id < reparsed->model().entry_count(); ++id) {
      EXPECT_EQ(db.model().ErrorOf(reparsed->model().atom(id)),
                reparsed->model().error(id));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextFormatRoundTripTest,
                         ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace qrel

#include <filesystem>
#include <fstream>

#include "qrel/util/fault_injection.h"

namespace qrel {
namespace {

TEST(LoadUdbFileTest, MissingFileIsNotFoundWithPath) {
  std::string path = ::testing::TempDir() + "/definitely_missing.udb";
  StatusOr<UnreliableDatabase> db = LoadUdbFile(path);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kNotFound);
  EXPECT_NE(db.status().message().find(path), std::string::npos);
}

TEST(LoadUdbFileTest, LoadsAValidFile) {
  std::string path = ::testing::TempDir() + "/load_udb_ok.udb";
  std::ofstream(path, std::ios::trunc) << kSample;
  StatusOr<UnreliableDatabase> db = LoadUdbFile(path);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->universe_size(), 4);
}

TEST(LoadUdbFileTest, ReadErrorIsNotConfusedWithNotFound) {
  // The deterministic fault site stands in for a mid-read I/O failure —
  // the status must be a non-kNotFound error naming the path.
  std::string path = ::testing::TempDir() + "/load_udb_read_fault.udb";
  std::ofstream(path, std::ios::trunc) << kSample;
  FaultInjector::Instance().Reset();
  FaultInjector::Instance().Arm("prob.load_udb.read", 1,
                                StatusCode::kInternal);
  StatusOr<UnreliableDatabase> db = LoadUdbFile(path);
  FaultInjector::Instance().Reset();
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInternal);
}

// Replays the malformed-input regression corpus (seeded from fuzz
// findings): every file must be rejected with a typed InvalidArgument
// that points at a line — and must never crash.
TEST(TextFormatTest, MalformedCorpusIsRejectedWithoutCrashing) {
  std::filesystem::path corpus =
      std::filesystem::path(QREL_TESTDATA_DIR) / "bad_udb";
  ASSERT_TRUE(std::filesystem::is_directory(corpus)) << corpus;
  int checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".udb") {
      continue;
    }
    std::ifstream in(entry.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Status status = ParseUdb(text).status();
    EXPECT_FALSE(status.ok()) << entry.path();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << entry.path();
    EXPECT_NE(status.message().find("line "), std::string::npos)
        << entry.path() << ": " << status.ToString();
    ++checked;
  }
  EXPECT_GE(checked, 6);
}

}  // namespace
}  // namespace qrel
