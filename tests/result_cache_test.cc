// Result cache unit tests: store hits, the storable gate, LRU eviction,
// and single-flight deduplication under real concurrency.

#include "qrel/net/result_cache.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qrel {
namespace {

CachedResult OkResult(const std::string& value, bool storable = true) {
  CachedResult result;
  result.fields.emplace_back("value", value);
  result.storable = storable;
  return result;
}

TEST(ResultCacheTest, StoresAndReplaysStorableResults) {
  ResultCache cache(4);
  bool from_cache = false;
  bool shared = false;
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return OkResult("a");
  };
  CachedResult first = cache.GetOrCompute(1, 10, 0, compute, &from_cache, &shared);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(first.fields[0].second, "a");
  CachedResult second =
      cache.GetOrCompute(1, 10, 0, compute, &from_cache, &shared);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(second.fields[0].second, "a");
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, NonStorableResultsAreNeverReplayed) {
  ResultCache cache(4);
  bool from_cache = false;
  bool shared = false;
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return OkResult("degraded", /*storable=*/false);
  };
  cache.GetOrCompute(1, 10, 0, compute, &from_cache, &shared);
  cache.GetOrCompute(1, 10, 0, compute, &from_cache, &shared);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ErrorsAreNeverStored) {
  ResultCache cache(4);
  bool from_cache = false;
  bool shared = false;
  auto compute = [] {
    CachedResult result;
    result.status = Status::Unavailable("shed");
    result.storable = true;  // even if mislabeled, errors must not persist
    return result;
  };
  cache.GetOrCompute(1, 10, 0, compute, &from_cache, &shared);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  bool from_cache = false;
  bool shared = false;
  auto make = [](const std::string& v) {
    return [v] { return OkResult(v); };
  };
  cache.GetOrCompute(1, 10, 0, make("one"), &from_cache, &shared);
  cache.GetOrCompute(2, 20, 0, make("two"), &from_cache, &shared);
  // Touch key 1 so key 2 is the LRU victim.
  cache.GetOrCompute(1, 10, 0, make("one"), &from_cache, &shared);
  EXPECT_TRUE(from_cache);
  cache.GetOrCompute(3, 30, 0, make("three"), &from_cache, &shared);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.GetOrCompute(1, 10, 0, make("one"), &from_cache, &shared);
  EXPECT_TRUE(from_cache);  // key 1 survived
  cache.GetOrCompute(2, 20, 0, make("two"), &from_cache, &shared);
  EXPECT_FALSE(from_cache);  // key 2 was evicted
}

TEST(ResultCacheTest, ZeroCapacityDisablesStoringOnly) {
  ResultCache cache(0);
  bool from_cache = false;
  bool shared = false;
  cache.GetOrCompute(1, 10, 0, [] { return OkResult("x"); }, &from_cache,
                     &shared);
  cache.GetOrCompute(1, 10, 0, [] { return OkResult("x"); }, &from_cache,
                     &shared);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// N concurrent identical requests: exactly one compute; every caller gets
// the leader's value; followers are counted as shared.
TEST(ResultCacheTest, SingleFlightDeduplicatesConcurrentLeaders) {
  ResultCache cache(4);
  std::atomic<int> computes{0};
  std::atomic<int> correct{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      bool from_cache = false;
      bool shared = false;
      CachedResult result = cache.GetOrCompute(
          7, 70, 0,
          [&] {
            computes.fetch_add(1);
            // Hold the flight open long enough for followers to pile up.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return OkResult("leader");
          },
          &from_cache, &shared);
      if (result.status.ok() && result.fields.size() == 1 &&
          result.fields[0].second == "leader") {
        correct.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(correct.load(), kThreads);
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.single_flight_shared,
            static_cast<uint64_t>(kThreads - 1));
}

// Followers share the leader's *typed error* too — a stampede behind a
// failing query must not multiply the failure work.
TEST(ResultCacheTest, SingleFlightSharesTypedErrors) {
  ResultCache cache(4);
  std::atomic<int> computes{0};
  std::atomic<int> got_unavailable{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      bool from_cache = false;
      bool shared = false;
      CachedResult result = cache.GetOrCompute(
          9, 90, 0,
          [&] {
            computes.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            CachedResult failed;
            failed.status = Status::Unavailable("shed");
            return failed;
          },
          &from_cache, &shared);
      if (result.status.code() == StatusCode::kUnavailable) {
        got_unavailable.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // The error is not stored, so after the flight lands a new leader would
  // recompute — but everyone inside the flight shared one attempt.
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(got_unavailable.load(), kThreads);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// Different flight keys (same store key) do NOT share a flight: a caller
// with a different envelope is not an exact duplicate.
TEST(ResultCacheTest, DifferentEnvelopesDoNotShareAFlight) {
  ResultCache cache(0);  // disable the store to isolate flight behavior
  std::atomic<int> computes{0};
  auto run = [&](uint64_t flight_key) {
    bool from_cache = false;
    bool shared = false;
    cache.GetOrCompute(
        1, flight_key, 0,
        [&] {
          computes.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          return OkResult("x");
        },
        &from_cache, &shared);
  };
  std::thread a([&] { run(100); });
  std::thread b([&] { run(200); });
  a.join();
  b.join();
  EXPECT_EQ(computes.load(), 2);
}

// RetireTag evicts exactly the entries published under the tag and
// leaves the rest of the store untouched.
TEST(ResultCacheTest, RetireTagEvictsOnlyThatTag) {
  ResultCache cache(8);
  bool from_cache = false;
  bool shared = false;
  auto make = [](const std::string& v) {
    return [v] { return OkResult(v); };
  };
  cache.GetOrCompute(1, 10, /*tag=*/111, make("a"), &from_cache, &shared);
  cache.GetOrCompute(2, 20, /*tag=*/111, make("b"), &from_cache, &shared);
  cache.GetOrCompute(3, 30, /*tag=*/222, make("c"), &from_cache, &shared);
  EXPECT_EQ(cache.RetireTag(111), 2u);
  EXPECT_EQ(cache.stats().retired, 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.GetOrCompute(3, 30, /*tag=*/222, make("c"), &from_cache, &shared);
  EXPECT_TRUE(from_cache);  // the other tag survived
  cache.GetOrCompute(1, 10, /*tag=*/111, make("a"), &from_cache, &shared);
  EXPECT_FALSE(from_cache);  // the retired entry is gone
}

// A leader that was computing against a version when its tag was retired
// (a DETACH or a content-changing RELOAD landed mid-flight) still hands
// its callers the result, but must not re-publish it to the store.
TEST(ResultCacheTest, StragglerCannotRepublishUnderRetiredTag) {
  ResultCache cache(8);
  bool from_cache = false;
  bool shared = false;
  CachedResult result = cache.GetOrCompute(
      5, 50, /*tag=*/333,
      [&] {
        // The retire lands while this flight is in progress.
        cache.RetireTag(333);
        return OkResult("stale");
      },
      &from_cache, &shared);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.fields[0].second, "stale");  // the caller still answers
  EXPECT_EQ(cache.stats().entries, 0u);         // but nothing was published
  cache.GetOrCompute(5, 50, /*tag=*/333, [] { return OkResult("again"); },
                     &from_cache, &shared);
  EXPECT_FALSE(from_cache);
}

// Tag 0 means "untagged": RetireTag(0) is a no-op and untagged entries
// are never swept.
TEST(ResultCacheTest, TagZeroIsNeverRetired) {
  ResultCache cache(8);
  bool from_cache = false;
  bool shared = false;
  cache.GetOrCompute(1, 10, /*tag=*/0, [] { return OkResult("x"); },
                     &from_cache, &shared);
  EXPECT_EQ(cache.RetireTag(0), 0u);
  cache.GetOrCompute(1, 10, /*tag=*/0, [] { return OkResult("x"); },
                     &from_cache, &shared);
  EXPECT_TRUE(from_cache);
}

// The retired-ring memory is bounded: after kRetiredRingSize further
// retirements, the oldest tag ages out and a (very late) straggler can
// publish again — by then the entry is unreachable via any live version
// and plain LRU pressure owns it.
TEST(ResultCacheTest, RetiredRingIsBounded) {
  ResultCache cache(256);
  bool from_cache = false;
  bool shared = false;
  cache.RetireTag(777);
  // Push 64 more tags through the ring so 777 ages out.
  for (uint64_t tag = 1000; tag < 1064; ++tag) {
    cache.RetireTag(tag);
  }
  cache.GetOrCompute(9, 90, /*tag=*/777, [] { return OkResult("late"); },
                     &from_cache, &shared);
  EXPECT_EQ(cache.stats().entries, 1u);  // aged-out tag publishes again
}

}  // namespace
}  // namespace qrel
