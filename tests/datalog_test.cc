#include <memory>

#include <gtest/gtest.h>

#include "qrel/datalog/eval.h"
#include "qrel/datalog/program.h"
#include "qrel/datalog/reliability.h"
#include "qrel/util/rng.h"

namespace qrel {
namespace {

constexpr char kReachability[] = R"(
  Path(x, y) :- E(x, y).
  Path(x, z) :- Path(x, y), E(y, z).
)";

// Path graph 0 -> 1 -> 2 -> 3 over universe 4.
Structure PathGraph() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("Node", 1);
  Structure structure(vocabulary, 4);
  structure.AddFact(0, {0, 1});
  structure.AddFact(0, {1, 2});
  structure.AddFact(0, {2, 3});
  for (Element i = 0; i < 4; ++i) {
    structure.AddFact(1, {i});
  }
  return structure;
}

TEST(DatalogParserTest, ParsesRulesAndFacts) {
  StatusOr<DatalogProgram> program = ParseDatalogProgram(kReachability);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->rules.size(), 2u);
  EXPECT_EQ(program->rules[0].head.relation, "Path");
  EXPECT_EQ(program->rules[0].body.size(), 1u);
  EXPECT_EQ(program->rules[1].body.size(), 2u);
  EXPECT_EQ(program->IdbPredicates(),
            (std::vector<std::string>{"Path"}));
}

TEST(DatalogParserTest, ParsesNegationAndConstants) {
  StatusOr<DatalogProgram> program = ParseDatalogProgram(
      "Good(x) :- Node(x), !Bad(x).\nBad(#2) .\nBad(3).");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_FALSE(program->rules[0].body[1].positive);
  EXPECT_EQ(program->rules[1].head.args[0].constant, 2);
  EXPECT_EQ(program->rules[2].head.args[0].constant, 3);
}

TEST(DatalogParserTest, RoundTripsThroughToString) {
  DatalogProgram program = *ParseDatalogProgram(kReachability);
  DatalogProgram reparsed = *ParseDatalogProgram(program.ToString());
  EXPECT_EQ(program.ToString(), reparsed.ToString());
}

TEST(DatalogParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(ParseDatalogProgram("").ok());
  EXPECT_FALSE(ParseDatalogProgram("Path(x, y)").ok());          // no '.'
  EXPECT_FALSE(ParseDatalogProgram("Path(x, y :- E(x, y).").ok());
  EXPECT_FALSE(ParseDatalogProgram("Path(x,) :- E(x, y).").ok());
  EXPECT_FALSE(ParseDatalogProgram(":- E(x, y).").ok());
}

TEST(DatalogCompileTest, RejectsUnknownEdbAndArityMismatch) {
  Structure db = PathGraph();
  EXPECT_FALSE(CompiledDatalog::Compile(
                   *ParseDatalogProgram("P(x) :- Zap(x)."), db.vocabulary())
                   .ok());
  EXPECT_FALSE(CompiledDatalog::Compile(
                   *ParseDatalogProgram("P(x) :- E(x)."), db.vocabulary())
                   .ok());
  // Inconsistent IDB arity.
  EXPECT_FALSE(
      CompiledDatalog::Compile(
          *ParseDatalogProgram("P(x) :- E(x, y).\nP(x, y) :- E(x, y)."),
          db.vocabulary())
          .ok());
  // IDB/EDB name clash.
  EXPECT_FALSE(CompiledDatalog::Compile(
                   *ParseDatalogProgram("E(x, y) :- E(y, x)."),
                   db.vocabulary())
                   .ok());
}

TEST(DatalogCompileTest, RejectsUnsafeRules) {
  Structure db = PathGraph();
  // Head variable not bound positively.
  EXPECT_FALSE(CompiledDatalog::Compile(
                   *ParseDatalogProgram("P(x, y) :- E(x, x)."),
                   db.vocabulary())
                   .ok());
  // Negated variable not bound positively.
  EXPECT_FALSE(CompiledDatalog::Compile(
                   *ParseDatalogProgram("P(x) :- Node(x), !E(x, y)."),
                   db.vocabulary())
                   .ok());
}

TEST(DatalogCompileTest, RejectsUnstratifiedNegation) {
  Structure db = PathGraph();
  EXPECT_FALSE(CompiledDatalog::Compile(
                   *ParseDatalogProgram("P(x) :- Node(x), !Q(x).\n"
                                        "Q(x) :- Node(x), !P(x)."),
                   db.vocabulary())
                   .ok());
}

TEST(DatalogEvalTest, TransitiveClosure) {
  Structure db = PathGraph();
  CompiledDatalog program =
      std::move(CompiledDatalog::Compile(*ParseDatalogProgram(kReachability),
                                         db.vocabulary()))
          .value();
  std::set<Tuple> path = *program.EvalPredicate(db, "Path");
  std::set<Tuple> expected = {{0, 1}, {0, 2}, {0, 3}, {1, 2},
                              {1, 3}, {2, 3}};
  EXPECT_EQ(path, expected);
}

TEST(DatalogEvalTest, StratifiedNegationComplement) {
  Structure db = PathGraph();
  CompiledDatalog program = std::move(
      CompiledDatalog::Compile(
          *ParseDatalogProgram(
              "Path(x, y) :- E(x, y).\n"
              "Path(x, z) :- Path(x, y), E(y, z).\n"
              "Unreached(x, y) :- Node(x), Node(y), !Path(x, y)."),
          db.vocabulary()))
          .value();
  std::set<Tuple> unreached = *program.EvalPredicate(db, "Unreached");
  // 16 pairs minus 6 reachable ones = 10.
  EXPECT_EQ(unreached.size(), 10u);
  EXPECT_TRUE(unreached.count({3, 0}));
  EXPECT_TRUE(unreached.count({0, 0}));
  EXPECT_FALSE(unreached.count({0, 3}));
}

TEST(DatalogEvalTest, FactsAndConstants) {
  Structure db = PathGraph();
  CompiledDatalog program = std::move(
      CompiledDatalog::Compile(
          *ParseDatalogProgram("Special(#2).\n"
                               "Marked(x) :- E(#0, x).\n"
                               "Both(x) :- Special(x), Marked(x)."),
          db.vocabulary()))
          .value();
  EXPECT_EQ(*program.EvalPredicate(db, "Special"),
            (std::set<Tuple>{{2}}));
  EXPECT_EQ(*program.EvalPredicate(db, "Marked"),
            (std::set<Tuple>{{1}}));
  EXPECT_TRUE(program.EvalPredicate(db, "Both")->empty());
}

TEST(DatalogEvalTest, EdbPredicateQueriesWork) {
  Structure db = PathGraph();
  CompiledDatalog program =
      std::move(CompiledDatalog::Compile(*ParseDatalogProgram(kReachability),
                                         db.vocabulary()))
          .value();
  std::set<Tuple> edges = *program.EvalPredicate(db, "E");
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_FALSE(program.EvalPredicate(db, "Nope").ok());
}

TEST(DatalogEvalTest, SameVariableTwiceInLiteral) {
  Structure db = PathGraph();
  db.AddFact(0, {2, 2});  // a self-loop
  CompiledDatalog program = std::move(
      CompiledDatalog::Compile(*ParseDatalogProgram("Loop(x) :- E(x, x)."),
                               db.vocabulary()))
          .value();
  EXPECT_EQ(*program.EvalPredicate(db, "Loop"), (std::set<Tuple>{{2}}));
}

UnreliableDatabase UnreliablePathGraph() {
  UnreliableDatabase db(PathGraph());
  // The edge 2 -> 3 may be wrong; a phantom edge 3 -> 0 may exist.
  db.SetErrorProbability(GroundAtom{0, {2, 3}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{0, {3, 0}}, Rational(1, 3));
  return db;
}

TEST(DatalogReliabilityTest, ExactReachabilityHandChecked) {
  UnreliableDatabase db = UnreliablePathGraph();
  CompiledDatalog program =
      std::move(CompiledDatalog::Compile(*ParseDatalogProgram(kReachability),
                                         db.vocabulary()))
          .value();
  ReliabilityReport report =
      *ExactDatalogReliability(program, "Path", db);
  EXPECT_EQ(report.arity, 2);
  EXPECT_EQ(report.work_units, 4u);
  // Worlds: (e23 kept?, e30 exists?).
  //  kept,   no   : Path as observed                  -> 0 diffs, p = 1/2
  //  kept,   yes  : full cycle: Path = all 16 pairs   -> 10 diffs, p = 1/4
  //  dropped,no   : lose (2,3),(1,3),(0,3)            -> 3 diffs,  p = 1/6
  //  dropped,yes  : edges 01,12,30: Path from 3: {0,1,2}; from 0: {1,2};
  //                 from 1: {2}; from 2: {} = 6 pairs; observed has 6;
  //                 diff = |{03,13,23} ∪ {30,31,32}| = 6 -> p = 1/12
  Rational expected = Rational(1, 4) * Rational(10) +
                      Rational(1, 6) * Rational(3) +
                      Rational(1, 12) * Rational(6);
  EXPECT_EQ(report.expected_error, expected);
  EXPECT_EQ(report.reliability, Rational(1) - expected / Rational(16));
}

TEST(DatalogReliabilityTest, CertainDatabasePerfectlyReliable) {
  UnreliableDatabase db(PathGraph());
  CompiledDatalog program =
      std::move(CompiledDatalog::Compile(*ParseDatalogProgram(kReachability),
                                         db.vocabulary()))
          .value();
  ReliabilityReport report =
      *ExactDatalogReliability(program, "Path", db);
  EXPECT_TRUE(report.reliability.IsOne());
}

TEST(DatalogReliabilityTest, PaddedEstimatorMatchesExact) {
  UnreliableDatabase db = UnreliablePathGraph();
  CompiledDatalog program =
      std::move(CompiledDatalog::Compile(*ParseDatalogProgram(kReachability),
                                         db.vocabulary()))
          .value();
  double exact =
      ExactDatalogReliability(program, "Path", db)->reliability.ToDouble();
  ApproxOptions options;
  options.seed = 7;
  options.fixed_samples = 60000;
  ApproxResult estimate =
      *PaddedDatalogReliability(program, "Path", db, options);
  EXPECT_NEAR(estimate.estimate, exact, 0.03);
}

TEST(DatalogReliabilityTest, NegationStratumReliability) {
  UnreliableDatabase db = UnreliablePathGraph();
  CompiledDatalog program = std::move(
      CompiledDatalog::Compile(
          *ParseDatalogProgram(
              "Path(x, y) :- E(x, y).\n"
              "Path(x, z) :- Path(x, y), E(y, z).\n"
              "Unreached(x, y) :- Node(x), Node(y), !Path(x, y)."),
          db.vocabulary()))
          .value();
  // Unreached is the complement of Path over Node×Node, so its expected
  // error equals Path's.
  ReliabilityReport path = *ExactDatalogReliability(program, "Path", db);
  ReliabilityReport unreached =
      *ExactDatalogReliability(program, "Unreached", db);
  EXPECT_EQ(path.expected_error, unreached.expected_error);
}

TEST(DatalogReliabilityTest, RejectsUnknownPredicate) {
  UnreliableDatabase db = UnreliablePathGraph();
  CompiledDatalog program =
      std::move(CompiledDatalog::Compile(*ParseDatalogProgram(kReachability),
                                         db.vocabulary()))
          .value();
  EXPECT_FALSE(ExactDatalogReliability(program, "Nope", db).ok());
  EXPECT_FALSE(
      PaddedDatalogReliability(program, "Nope", db, ApproxOptions()).ok());
}

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

TEST(SemiNaiveTest, MatchesNaiveOnLinearRecursion) {
  Structure db = PathGraph();
  CompiledDatalog program =
      std::move(CompiledDatalog::Compile(*ParseDatalogProgram(kReachability),
                                         db.vocabulary()))
          .value();
  EXPECT_EQ(program.Eval(db), program.EvalNaive(db));
}

TEST(SemiNaiveTest, MatchesNaiveOnNonlinearRecursion) {
  // Nonlinear transitive closure: two same-stratum IDB literals per rule.
  Structure db = PathGraph();
  db.AddFact(0, {3, 0});  // close the cycle
  CompiledDatalog program = std::move(
      CompiledDatalog::Compile(
          *ParseDatalogProgram("Path(x, y) :- E(x, y).\n"
                               "Path(x, z) :- Path(x, y), Path(y, z)."),
          db.vocabulary()))
          .value();
  DatalogResult semi = program.Eval(db);
  DatalogResult naive = program.EvalNaive(db);
  EXPECT_EQ(semi, naive);
  EXPECT_EQ(semi.at("Path").size(), 16u);  // full cycle: all pairs
}

TEST(SemiNaiveTest, MatchesNaiveWithNegationStrata) {
  Structure db = PathGraph();
  CompiledDatalog program = std::move(
      CompiledDatalog::Compile(
          *ParseDatalogProgram(
              "Path(x, y) :- E(x, y).\n"
              "Path(x, z) :- Path(x, y), E(y, z).\n"
              "Unreached(x, y) :- Node(x), Node(y), !Path(x, y).\n"
              "Sink(x) :- Node(x), !HasOut(x).\n"
              "HasOut(x) :- E(x, y)."),
          db.vocabulary()))
          .value();
  EXPECT_EQ(program.Eval(db), program.EvalNaive(db));
  EXPECT_EQ(program.Eval(db).at("Sink"), (std::set<Tuple>{{3}}));
}

TEST(SemiNaiveTest, MatchesNaiveOnRandomGraphs) {
  Rng rng(808);
  for (int round = 0; round < 8; ++round) {
    auto vocabulary = std::make_shared<Vocabulary>();
    int e = vocabulary->AddRelation("E", 2);
    vocabulary->AddRelation("Node", 1);
    int n = 3 + static_cast<int>(rng.NextBelow(5));
    Structure db(vocabulary, n);
    for (Element i = 0; i < n; ++i) {
      db.AddFact(1, {i});
      for (Element j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.3)) {
          db.AddFact(e, {i, j});
        }
      }
    }
    CompiledDatalog program = std::move(
        CompiledDatalog::Compile(
            *ParseDatalogProgram(
                "Path(x, y) :- E(x, y).\n"
                "Path(x, z) :- Path(x, y), E(y, z).\n"
                "Sym(x, y) :- Path(x, y), Path(y, x).\n"
                "Unreached(x, y) :- Node(x), Node(y), !Path(x, y)."),
            db.vocabulary()))
            .value();
    EXPECT_EQ(program.Eval(db), program.EvalNaive(db)) << "n=" << n;
  }
}

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

TEST(DatalogEvalTest, MultiStratumChain) {
  // Three strata: Path (0), NoPath (1), Island (2).
  Structure db = PathGraph();
  CompiledDatalog program = std::move(
      CompiledDatalog::Compile(
          *ParseDatalogProgram(
              "Path(x, y) :- E(x, y).\n"
              "Path(x, z) :- Path(x, y), E(y, z).\n"
              "NoPath(x, y) :- Node(x), Node(y), !Path(x, y).\n"
              "Island(x) :- Node(x), NoPath(x, x), !Reaches(x).\n"
              "Reaches(x) :- Path(x, y)."),
          db.vocabulary()))
          .value();
  // Every node of the chain 0->1->2->3 has NoPath(x,x); only 3 has no
  // outgoing path.
  EXPECT_EQ(*program.EvalPredicate(db, "Island"), (std::set<Tuple>{{3}}));
  EXPECT_EQ(program.Eval(db), program.EvalNaive(db));
}

TEST(DatalogEvalTest, ConstantsInNegatedLiterals) {
  Structure db = PathGraph();
  CompiledDatalog program = std::move(
      CompiledDatalog::Compile(
          *ParseDatalogProgram("Ok(x) :- Node(x), !E(x, #3)."),
          db.vocabulary()))
          .value();
  // Only node 2 has an edge to 3.
  EXPECT_EQ(*program.EvalPredicate(db, "Ok"),
            (std::set<Tuple>{{0}, {1}, {3}}));
}

TEST(DatalogEvalTest, RepeatedConstantHead) {
  Structure db = PathGraph();
  CompiledDatalog program = std::move(
      CompiledDatalog::Compile(
          *ParseDatalogProgram("Pair(#1, #2).\nPair(x, x) :- Node(x)."),
          db.vocabulary()))
          .value();
  std::set<Tuple> pairs = *program.EvalPredicate(db, "Pair");
  EXPECT_EQ(pairs.size(), 5u);
  EXPECT_TRUE(pairs.count({1, 2}));
  EXPECT_TRUE(pairs.count({0, 0}));
}

}  // namespace
}  // namespace qrel
