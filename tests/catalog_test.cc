// DbCatalog unit tests: attach/resolve/list, versioned reload with the
// all-or-nothing swap contract, the two-phase detach protocol, name
// validation, and typed failures at every net.catalog.* fault site.

#include "qrel/net/catalog.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "qrel/prob/text_format.h"
#include "qrel/util/fault_injection.h"

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact S 0
absent S 1 err=1/3
)";

constexpr char kAltUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/2
fact S 0
absent S 1 err=1/3
)";

UnreliableDatabase TestDatabase(const char* text = kUdbText) {
  StatusOr<UnreliableDatabase> database = ParseUdb(text);
  EXPECT_TRUE(database.ok()) << database.status().ToString();
  return std::move(database).value();
}

std::string WriteTempUdb(const std::string& name, const char* text) {
  std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::fputs(text, f);
  std::fclose(f);
  return path;
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(CatalogTest, ValidNameRejectsPathologies) {
  EXPECT_TRUE(DbCatalog::ValidName("orders"));
  EXPECT_TRUE(DbCatalog::ValidName("orders_v2.prod-eu"));
  EXPECT_TRUE(DbCatalog::ValidName("A"));
  EXPECT_FALSE(DbCatalog::ValidName(""));
  EXPECT_FALSE(DbCatalog::ValidName("has space"));
  EXPECT_FALSE(DbCatalog::ValidName("new\nline"));
  EXPECT_FALSE(DbCatalog::ValidName("slash/y"));
  EXPECT_FALSE(DbCatalog::ValidName(std::string(65, 'x')));
  EXPECT_TRUE(DbCatalog::ValidName(std::string(64, 'x')));
}

TEST_F(CatalogTest, AttachResolveListRoundTrip) {
  DbCatalog catalog;
  EXPECT_EQ(catalog.size(), 0u);
  ASSERT_TRUE(catalog.AttachDatabase("orders", TestDatabase()).ok());
  EXPECT_EQ(catalog.size(), 1u);

  StatusOr<std::shared_ptr<const DbVersion>> resolved =
      catalog.Resolve("orders");
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  const DbVersion& v = *resolved.value();
  EXPECT_EQ(v.name, "orders");
  EXPECT_EQ(v.version, 1u);
  EXPECT_EQ(v.universe_size, 3);
  EXPECT_NE(v.fingerprint, 0u);

  std::vector<DbInfo> infos = catalog.List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "orders");
  EXPECT_EQ(infos[0].state, DbState::kServing);

  EXPECT_EQ(catalog.Resolve("missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.AttachDatabase("bad name", TestDatabase())
                .code(),
            StatusCode::kInvalidArgument);
  // The name is taken: a second attach must not clobber it.
  EXPECT_EQ(catalog.AttachDatabase("orders", TestDatabase()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CatalogTest, AttachFromFileRecordsTheSourcePath) {
  std::string path = WriteTempUdb("qrel_catalog_attach.udb", kUdbText);
  DbCatalog catalog;
  ASSERT_TRUE(catalog.Attach("orders", path).ok());
  StatusOr<std::shared_ptr<const DbVersion>> resolved =
      catalog.Resolve("orders");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value()->source_path, path);
  // A bad file fails typed and leaves no catalog entry behind.
  EXPECT_FALSE(catalog.Attach("broken", path + ".does-not-exist").ok());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.Resolve("broken").status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST_F(CatalogTest, ReloadBumpsVersionAndReportsContentChange) {
  std::string path = WriteTempUdb("qrel_catalog_reload.udb", kUdbText);
  DbCatalog catalog;
  ASSERT_TRUE(catalog.Attach("orders", path).ok());
  uint64_t fp1 = catalog.Resolve("orders").value()->fingerprint;

  // Unchanged content: version bumps (a reload is a new snapshot), but
  // changed=false tells the caller no cache invalidation is needed.
  StatusOr<ReloadOutcome> same = catalog.Reload("orders");
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_FALSE(same->changed);
  EXPECT_EQ(same->new_version->version, 2u);
  EXPECT_EQ(same->new_version->fingerprint, fp1);

  WriteTempUdb("qrel_catalog_reload.udb", kAltUdbText);
  StatusOr<ReloadOutcome> changed = catalog.Reload("orders");
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(changed->changed);
  EXPECT_EQ(changed->old_version->fingerprint, fp1);
  EXPECT_NE(changed->new_version->fingerprint, fp1);
  EXPECT_EQ(changed->new_version->version, 3u);
  EXPECT_EQ(catalog.Resolve("orders").value()->version, 3u);

  // An explicit replacement path is adopted as the new source path.
  std::string alt_path =
      WriteTempUdb("qrel_catalog_reload_alt.udb", kUdbText);
  StatusOr<ReloadOutcome> moved = catalog.Reload("orders", alt_path);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(catalog.Resolve("orders").value()->source_path, alt_path);

  EXPECT_EQ(catalog.Reload("missing").status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
  std::remove(alt_path.c_str());
}

TEST_F(CatalogTest, FailedReloadLeavesTheOldVersionUntouched) {
  std::string path = WriteTempUdb("qrel_catalog_badreload.udb", kUdbText);
  DbCatalog catalog;
  ASSERT_TRUE(catalog.Attach("orders", path).ok());
  std::shared_ptr<const DbVersion> before =
      catalog.Resolve("orders").value();

  WriteTempUdb("qrel_catalog_badreload.udb", "universe banana\n");
  EXPECT_FALSE(catalog.Reload("orders").ok());
  // Same object, not just same content: nothing was swapped.
  EXPECT_EQ(catalog.Resolve("orders").value().get(), before.get());
  // And the entry is reloadable again (the failure released the claim).
  WriteTempUdb("qrel_catalog_badreload.udb", kAltUdbText);
  EXPECT_TRUE(catalog.Reload("orders").ok());
  std::remove(path.c_str());
}

TEST_F(CatalogTest, MemoryAttachedDatabasesReloadInMemoryOnly) {
  DbCatalog catalog;
  ASSERT_TRUE(catalog.AttachDatabase("mem", TestDatabase()).ok());
  // No recorded source path: a path-less reload cannot know what to read.
  EXPECT_EQ(catalog.Reload("mem").status().code(),
            StatusCode::kInvalidArgument);
  StatusOr<ReloadOutcome> outcome =
      catalog.ReloadDatabase("mem", TestDatabase(kAltUdbText));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->changed);
  EXPECT_EQ(outcome->new_version->version, 2u);
}

TEST_F(CatalogTest, TwoPhaseDetachProtocol) {
  DbCatalog catalog;
  ASSERT_TRUE(catalog.AttachDatabase("orders", TestDatabase()).ok());

  StatusOr<std::shared_ptr<const DbVersion>> begun =
      catalog.BeginDetach("orders");
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  EXPECT_EQ(begun.value()->name, "orders");
  // Draining: resolves fail typed retryable, re-detach and reload fail.
  EXPECT_EQ(catalog.Resolve("orders").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(catalog.BeginDetach("orders").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(catalog.Reload("orders").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(catalog.List()[0].state, DbState::kDraining);

  // Cancel restores serving.
  catalog.CancelDetach("orders");
  EXPECT_TRUE(catalog.Resolve("orders").ok());

  // Begin again and finish: the entry is gone.
  ASSERT_TRUE(catalog.BeginDetach("orders").ok());
  catalog.FinishDetach("orders");
  EXPECT_EQ(catalog.Resolve("orders").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.size(), 0u);

  EXPECT_EQ(catalog.BeginDetach("missing").status().code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, DetachedVersionOutlivesItsCatalogEntry) {
  DbCatalog catalog;
  ASSERT_TRUE(catalog.AttachDatabase("orders", TestDatabase()).ok());
  std::shared_ptr<const DbVersion> pinned =
      catalog.Resolve("orders").value();
  ASSERT_TRUE(catalog.BeginDetach("orders").ok());
  catalog.FinishDetach("orders");
  // The RCU contract: a holder of the shared_ptr can keep computing
  // against the version after the catalog forgot it.
  EXPECT_EQ(pinned->name, "orders");
  EXPECT_EQ(pinned->universe_size, 3);
}

// Every reload-path fault site: the typed error surfaces and the serving
// version is untouched — byte-for-byte the same object.
TEST_F(CatalogTest, ReloadFaultSitesNeverDisturbTheServingVersion) {
  std::string path = WriteTempUdb("qrel_catalog_fault.udb", kUdbText);
  DbCatalog catalog;
  ASSERT_TRUE(catalog.Attach("orders", path).ok());
  std::shared_ptr<const DbVersion> before =
      catalog.Resolve("orders").value();

  for (const char* site :
       {"net.catalog.load", "net.catalog.verify", "net.catalog.fingerprint",
        "net.catalog.swap"}) {
    SCOPED_TRACE(site);
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Arm(site, 1, StatusCode::kInternal);
    StatusOr<ReloadOutcome> outcome = catalog.Reload("orders");
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kInternal);
    EXPECT_EQ(catalog.Resolve("orders").value().get(), before.get());
  }

  // After all that chaos a clean reload still works.
  FaultInjector::Instance().Reset();
  EXPECT_TRUE(catalog.Reload("orders").ok());
  std::remove(path.c_str());
}

TEST_F(CatalogTest, AttachAndDetachFaultSitesFailTyped) {
  std::string path = WriteTempUdb("qrel_catalog_fault2.udb", kUdbText);
  DbCatalog catalog;

  FaultInjector::Instance().Arm("net.catalog.attach", 1,
                                StatusCode::kInternal);
  EXPECT_EQ(catalog.Attach("orders", path).code(), StatusCode::kInternal);
  EXPECT_EQ(catalog.size(), 0u);
  ASSERT_TRUE(catalog.Attach("orders", path).ok());

  FaultInjector::Instance().Arm("net.catalog.detach", 1,
                                StatusCode::kInternal);
  EXPECT_EQ(catalog.BeginDetach("orders").status().code(),
            StatusCode::kInternal);
  // The failed begin left no draining mark behind.
  EXPECT_TRUE(catalog.Resolve("orders").ok());
  std::remove(path.c_str());
}

// A failed load during attach of a brand-new name erases the placeholder:
// the name is immediately reusable.
TEST_F(CatalogTest, FailedAttachReleasesTheName) {
  std::string path = WriteTempUdb("qrel_catalog_fault3.udb", kUdbText);
  DbCatalog catalog;
  FaultInjector::Instance().Arm("net.catalog.load", 1,
                                StatusCode::kInternal);
  EXPECT_FALSE(catalog.Attach("orders", path).ok());
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_TRUE(catalog.Attach("orders", path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qrel
