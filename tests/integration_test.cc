// Cross-validation ladder over random databases and random queries: every
// fast or approximate path must agree with the exact world enumeration.
// This is the repository's broadest safety net — a disagreement anywhere
// in the stack (parser, evaluator, grounding, estimators, engine
// dispatch) surfaces here.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "qrel/core/approx.h"
#include "qrel/core/reliability.h"
#include "qrel/engine/engine.h"
#include "qrel/logic/classify.h"
#include "qrel/logic/grounding.h"
#include "qrel/util/rng.h"

namespace qrel {
namespace {

// Random database over E(2), S(1), T(1) with `uncertain` noisy atoms.
UnreliableDatabase RandomDatabase(Rng* rng, int n, int uncertain) {
  auto vocabulary = std::make_shared<Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  int s = vocabulary->AddRelation("S", 1);
  int t = vocabulary->AddRelation("T", 1);
  Structure observed(vocabulary, n);
  for (Element i = 0; i < n; ++i) {
    for (Element j = 0; j < n; ++j) {
      if (rng->NextBernoulli(0.3)) {
        observed.AddFact(e, {i, j});
      }
    }
    if (rng->NextBernoulli(0.5)) observed.AddFact(s, {i});
    if (rng->NextBernoulli(0.5)) observed.AddFact(t, {i});
  }
  UnreliableDatabase db(std::move(observed));
  for (int a = 0; a < uncertain; ++a) {
    int64_t den = 2 + static_cast<int64_t>(rng->NextBelow(6));
    Rational mu(1 + static_cast<int64_t>(
                        rng->NextBelow(static_cast<uint64_t>(den) - 1)),
                den);
    switch (rng->NextBelow(3)) {
      case 0:
        db.SetErrorProbability(
            GroundAtom{e,
                       {static_cast<Element>(rng->NextBelow(n)),
                        static_cast<Element>(rng->NextBelow(n))}},
            mu);
        break;
      case 1:
        db.SetErrorProbability(
            GroundAtom{s, {static_cast<Element>(rng->NextBelow(n))}}, mu);
        break;
      default:
        db.SetErrorProbability(
            GroundAtom{t, {static_cast<Element>(rng->NextBelow(n))}}, mu);
        break;
    }
  }
  return db;
}

// Random quantifier-free matrix over up to `depth` connectives.
FormulaPtr RandomMatrix(Rng* rng, const std::vector<std::string>& variables,
                        int depth) {
  if (depth == 0 || rng->NextBernoulli(0.35)) {
    // A leaf: relational atom or equality.
    auto term = [&]() {
      if (rng->NextBernoulli(0.85)) {
        return Term::Var(variables[rng->NextBelow(variables.size())]);
      }
      return Term::Const(static_cast<Element>(rng->NextBelow(3)));
    };
    switch (rng->NextBelow(4)) {
      case 0:
        return Atom("E", {term(), term()});
      case 1:
        return Atom("S", {term()});
      case 2:
        return Atom("T", {term()});
      default:
        return Equals(term(), term());
    }
  }
  switch (rng->NextBelow(5)) {
    case 0:
      return Not(RandomMatrix(rng, variables, depth - 1));
    case 1:
      return And(RandomMatrix(rng, variables, depth - 1),
                 RandomMatrix(rng, variables, depth - 1));
    case 2:
      return Or(RandomMatrix(rng, variables, depth - 1),
                RandomMatrix(rng, variables, depth - 1));
    case 3:
      return Implies(RandomMatrix(rng, variables, depth - 1),
                     RandomMatrix(rng, variables, depth - 1));
    default:
      return Iff(RandomMatrix(rng, variables, depth - 1),
                 RandomMatrix(rng, variables, depth - 1));
  }
}

// Random sentence: a quantifier prefix over the matrix variables.
FormulaPtr RandomSentence(Rng* rng, int quantifiers, int depth) {
  std::vector<std::string> variables;
  for (int i = 0; i < quantifiers; ++i) {
    variables.push_back("v" + std::to_string(i));
  }
  FormulaPtr body = RandomMatrix(rng, variables, depth);
  for (int i = quantifiers; i-- > 0;) {
    body = rng->NextBernoulli(0.5) ? Exists(variables[i], body)
                                   : ForAll(variables[i], body);
  }
  return body;
}

class IntegrationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntegrationTest, QuantifierFreePathAgreesWithEnumeration) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    UnreliableDatabase db = RandomDatabase(&rng, 3, 5);
    std::vector<std::string> variables = {"x", "y"};
    FormulaPtr query = RandomMatrix(&rng, variables, 3);
    ReliabilityReport fast = *QuantifierFreeReliability(query, db);
    ReliabilityReport exact = *ExactReliability(query, db);
    EXPECT_EQ(fast.expected_error, exact.expected_error)
        << query->ToString();
  }
}

TEST_P(IntegrationTest, GroundingMatchesExactProbability) {
  Rng rng(GetParam() ^ 0xabcdefULL);
  for (int round = 0; round < 6; ++round) {
    UnreliableDatabase db = RandomDatabase(&rng, 3, 5);
    // Existential sentence: ∃v0 ∃v1 matrix.
    std::vector<std::string> variables = {"v0", "v1"};
    FormulaPtr sentence =
        Exists(variables, RandomMatrix(&rng, variables, 2));
    if (!IsExistential(sentence)) {
      continue;  // a negation-heavy matrix can hide a ∀; skip those
    }
    double exact = ExactQueryProbability(sentence, db, {})->ToDouble();
    ApproxOptions options;
    options.epsilon = 0.03;
    options.delta = 0.02;
    options.seed = rng.NextUint64();
    ApproxResult fptras =
        *ExistentialProbabilityFptras(sentence, db, {}, options);
    if (exact == 0.0) {
      EXPECT_EQ(fptras.estimate, 0.0) << sentence->ToString();
    } else {
      EXPECT_NEAR(fptras.estimate, exact, 4 * options.epsilon * exact)
          << sentence->ToString();
    }
  }
}

TEST_P(IntegrationTest, PaddedEstimatorAgreesOnRandomSentences) {
  Rng rng(GetParam() ^ 0x1234567ULL);
  for (int round = 0; round < 3; ++round) {
    UnreliableDatabase db = RandomDatabase(&rng, 3, 4);
    FormulaPtr sentence = RandomSentence(&rng, 2, 2);
    double exact = ExactReliability(sentence, db)->reliability.ToDouble();
    ApproxOptions options;
    options.seed = rng.NextUint64();
    options.fixed_samples = 60000;
    ApproxResult padded = *PaddedReliabilityApprox(sentence, db, options);
    EXPECT_NEAR(padded.estimate, exact, 0.03) << sentence->ToString();
  }
}

TEST_P(IntegrationTest, EngineAgreesWithExactOnAllClasses) {
  Rng rng(GetParam() ^ 0x777ULL);
  for (int round = 0; round < 4; ++round) {
    UnreliableDatabase db = RandomDatabase(&rng, 3, 5);
    FormulaPtr sentence = RandomSentence(&rng, 2, 2);
    double exact = ExactReliability(sentence, db)->reliability.ToDouble();
    ReliabilityEngine engine(std::move(db));
    EngineOptions options;
    options.seed = rng.NextUint64();
    options.epsilon = 0.03;
    options.delta = 0.02;
    StatusOr<EngineReport> report = engine.Run(sentence, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_NEAR(report->reliability, exact, report->is_exact ? 1e-12 : 0.1)
        << sentence->ToString() << " via " << report->method;
  }
}

TEST_P(IntegrationTest, PerTupleErrorsSumToTotal) {
  Rng rng(GetParam() ^ 0x9999ULL);
  for (int round = 0; round < 4; ++round) {
    UnreliableDatabase db = RandomDatabase(&rng, 3, 5);
    std::vector<std::string> variables = {"x"};
    FormulaPtr body = RandomMatrix(&rng, {"x", "y"}, 2);
    FormulaPtr query = rng.NextBernoulli(0.5) ? Exists("y", body) : body;
    std::vector<TupleError> breakdown = *PerTupleExpectedError(query, db);
    Rational total;
    for (const TupleError& row : breakdown) {
      total += row.error;
    }
    EXPECT_EQ(total, ExactReliability(query, db)->expected_error)
        << query->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationTest,
                         ::testing::Values(1001u, 2002u, 3003u, 4004u,
                                           5005u));

// The analyzer-engine contract: across every rung of the ladder, the
// method Explain() predicts is what Run() then actually executes (the
// plan string is a prefix of the report's method, which may append run
// details like world counts).
TEST(ExplainContractTest, PlannedMethodMatchesExecutedRung) {
  Rng rng(424242u);
  UnreliableDatabase db = RandomDatabase(&rng, 3, 4);
  ReliabilityEngine engine(std::move(db));

  EngineOptions fast;
  fast.seed = 9;
  fast.epsilon = 0.25;
  fast.delta = 0.25;
  fast.fixed_samples = 32;
  EngineOptions approx = fast;
  approx.force_approximate = true;

  struct Case {
    const char* query;
    const EngineOptions* options;
  };
  const Case cases[] = {
      // Prop 3.1 (quantifier-free exact).
      {"S(x) & !T(x)", &fast},
      // Thm 4.2 (16 worlds, exact enumeration).
      {"forall x . exists y . E(x, y)", &fast},
      // Static closed form, no execution.
      {"exists x . S(x) & !S(x)", &fast},
      {"S(x) | !S(x)", &fast},
      // Cor 5.5, existential branch.
      {"exists x . S(x) | T(x)", &approx},
      // Cor 5.5, universal branch.
      {"forall x . S(x) -> T(x)", &approx},
      // Thm 5.12 (general first-order).
      {"forall x . exists y . E(x, y) & S(y)", &approx},
      // Simplification upgrades the rung: double negation peels to a
      // conjunctive query, equality folds away.
      {"!!(exists x . S(x) & x = x)", &approx},
  };
  for (const Case& test_case : cases) {
    StatusOr<EnginePlan> plan =
        engine.Explain(test_case.query, *test_case.options);
    ASSERT_TRUE(plan.ok()) << test_case.query;
    ASSERT_FALSE(plan->has_errors()) << test_case.query;
    StatusOr<EngineReport> report =
        engine.Run(test_case.query, *test_case.options);
    ASSERT_TRUE(report.ok())
        << test_case.query << ": " << report.status().ToString();
    EXPECT_EQ(report->method.rfind(plan->planned_method, 0), 0u)
        << test_case.query << ": planned \"" << plan->planned_method
        << "\" but ran \"" << report->method << "\"";
    EXPECT_LE(PlanRank(plan->effective_class), PlanRank(plan->query_class))
        << test_case.query;
  }
}

TEST(ExplainContractTest, DatalogPlannedMethodMatchesExecutedRung) {
  Rng rng(515151u);
  UnreliableDatabase db = RandomDatabase(&rng, 3, 4);
  ReliabilityEngine engine(std::move(db));
  const char* program =
      "Path(x, y) :- E(x, y).\n"
      "Path(x, z) :- Path(x, y), E(y, z).";

  EngineOptions exact;
  exact.seed = 3;
  EngineOptions approx = exact;
  approx.force_approximate = true;
  approx.epsilon = 0.25;
  approx.delta = 0.25;
  approx.fixed_samples = 32;

  for (const EngineOptions* options : {&exact, &approx}) {
    StatusOr<EnginePlan> plan =
        engine.ExplainDatalog(program, "Path", *options);
    ASSERT_TRUE(plan.ok());
    ASSERT_FALSE(plan->has_errors());
    StatusOr<EngineReport> report =
        engine.RunDatalog(program, "Path", *options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->method.rfind(plan->planned_method, 0), 0u)
        << "planned \"" << plan->planned_method << "\" but ran \""
        << report->method << "\"";
  }
}

}  // namespace
}  // namespace qrel
