#include "qrel/propositional/naive_mc.h"

#include <gtest/gtest.h>

#include "qrel/propositional/exact.h"

namespace qrel {
namespace {

TEST(NaiveMcTest, RejectsBadArguments) {
  Dnf dnf(2);
  dnf.AddTerm({{0, true}});
  EXPECT_FALSE(NaiveMcProbability(dnf, {Rational(1, 2)}, 100, 1).ok());
  EXPECT_FALSE(NaiveMcProbability(
                   dnf, {Rational(1, 2), Rational(1, 2)}, 0, 1)
                   .ok());
  EXPECT_FALSE(NaiveMcProbability(
                   dnf, {Rational(2), Rational(1, 2)}, 100, 1)
                   .ok());
}

TEST(NaiveMcTest, ConstantFormulas) {
  Dnf never(2);
  NaiveMcResult result =
      *NaiveMcProbability(never, {Rational(1, 2), Rational(1, 2)}, 500, 1);
  EXPECT_EQ(result.hits, 0u);
  EXPECT_EQ(result.estimate, 0.0);

  Dnf always(2);
  always.AddTerm({});
  result =
      *NaiveMcProbability(always, {Rational(1, 2), Rational(1, 2)}, 500, 1);
  EXPECT_EQ(result.hits, 500u);
  EXPECT_EQ(result.estimate, 1.0);
}

TEST(NaiveMcTest, ConvergesToExactProbability) {
  // (x0 & x1) | !x2 at mixed probabilities.
  Dnf dnf(3);
  dnf.AddTerm({{0, true}, {1, true}});
  dnf.AddTerm({{2, false}});
  std::vector<Rational> prob = {Rational(1, 3), Rational(1, 2),
                                Rational(3, 4)};
  double exact = ShannonDnfProbability(dnf, prob).ToDouble();
  NaiveMcResult result = *NaiveMcProbability(dnf, prob, 40000, 9);
  EXPECT_NEAR(result.estimate, exact, 0.01);
}

TEST(NaiveMcTest, DeterministicForFixedSeed) {
  Dnf dnf(2);
  dnf.AddTerm({{0, true}});
  std::vector<Rational> prob = {Rational(1, 2), Rational(1, 2)};
  NaiveMcResult a = *NaiveMcProbability(dnf, prob, 1000, 77);
  NaiveMcResult b = *NaiveMcProbability(dnf, prob, 1000, 77);
  EXPECT_EQ(a.hits, b.hits);
}

}  // namespace
}  // namespace qrel
