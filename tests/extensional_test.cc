// Cross-check suite for the extensional (lifted) evaluator: on every safe
// query it must agree bit-for-bit — exact rationals, not within-epsilon —
// with the Theorem 4.2 possible-world enumeration, including at the
// boundary marginals 0 and 1.

#include "qrel/lifted/extensional.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/core/reliability.h"
#include "qrel/logic/parser.h"
#include "qrel/util/rng.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

// E = {(0,1), (1,2)}, S = {0}, T = {2} over universe {0, 1, 2}.
UnreliableDatabase SmallDatabase() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("S", 1);
  vocabulary->AddRelation("T", 1);
  Structure observed(vocabulary, 3);
  observed.AddFact(0, {0, 1});
  observed.AddFact(0, {1, 2});
  observed.AddFact(1, {0});
  observed.AddFact(2, {2});
  return UnreliableDatabase(std::move(observed));
}

UnreliableDatabase SmallUncertainDatabase() {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{0, {2, 0}}, Rational(1, 5));  // absent
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 3));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));  // absent
  db.SetErrorProbability(GroundAtom{2, {2}}, Rational(2, 7));
  return db;
}

// Safe queries exercising every plan shape: single atom, hierarchy,
// disjoint components, free variables, repeated variables, equality
// substitution, and a residual equality leaf.
const char* const kSafeQueries[] = {
    "exists x . S(x)",
    "exists x . S(x) & T(x)",
    "exists x . exists y . E(x, y) & S(y)",
    "exists x . exists y . S(x) & T(y)",
    "exists x . S(x) & E(x, y)",
    "exists y . E(x, y)",
    "exists x . E(x, x)",
    "exists x . x = #1 & S(x)",
    "exists x . x = y & E(x, y)",
};

// Every free-variable assignment over db's universe, in tuple-space order.
std::vector<Tuple> AllAssignments(const FormulaPtr& query,
                                  const UnreliableDatabase& db) {
  size_t arity = query->FreeVariables().size();
  std::vector<Tuple> tuples;
  Tuple tuple(arity, 0);
  do {
    tuples.push_back(tuple);
  } while (AdvanceTuple(&tuple, db.universe_size()));
  return tuples;
}

void ExpectBitIdentical(const FormulaPtr& query, const UnreliableDatabase& db,
                        const std::string& label) {
  StatusOr<ReliabilityReport> lifted = ExtensionalReliability(query, db);
  ASSERT_TRUE(lifted.ok()) << label << ": " << lifted.status().ToString();
  StatusOr<ReliabilityReport> enumerated = ExactReliability(query, db);
  ASSERT_TRUE(enumerated.ok())
      << label << ": " << enumerated.status().ToString();
  EXPECT_EQ(lifted->arity, enumerated->arity) << label;
  EXPECT_EQ(lifted->expected_error, enumerated->expected_error) << label;
  EXPECT_EQ(lifted->reliability, enumerated->reliability) << label;

  for (const Tuple& tuple : AllAssignments(query, db)) {
    StatusOr<Rational> p = ExtensionalQueryProbability(query, db, tuple);
    ASSERT_TRUE(p.ok()) << label << ": " << p.status().ToString();
    StatusOr<Rational> q = ExactQueryProbability(query, db, tuple);
    ASSERT_TRUE(q.ok()) << label << ": " << q.status().ToString();
    EXPECT_EQ(*p, *q) << label;
  }
}

TEST(ExtensionalTest, MatchesWorldEnumerationOnHandBuiltDatabase) {
  UnreliableDatabase db = SmallUncertainDatabase();
  for (const char* query : kSafeQueries) {
    ExpectBitIdentical(MustParse(query), db, query);
  }
}

TEST(ExtensionalTest, CertainDatabaseIsPerfectlyReliable) {
  UnreliableDatabase db = SmallDatabase();
  ReliabilityReport report =
      *ExtensionalReliability(MustParse("exists x . S(x) & T(x)"), db);
  EXPECT_TRUE(report.expected_error.IsZero());
  EXPECT_TRUE(report.reliability.IsOne());
}

TEST(ExtensionalTest, HandComputedExistential) {
  // ψ = ∃x S(x); μ(S(0)) = 1/3 (observed true), μ(S(1)) = 1/2 (observed
  // false). ψ^𝔄 = true; ψ^𝔅 false iff S(0) flips and S(1) does not:
  // H = 1/3 · 1/2 = 1/6.
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 3));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));
  ReliabilityReport report =
      *ExtensionalReliability(MustParse("exists x . S(x)"), db);
  EXPECT_EQ(report.arity, 0);
  EXPECT_EQ(report.expected_error, Rational(1, 6));
  EXPECT_EQ(report.reliability, Rational(5, 6));
}

TEST(ExtensionalTest, RandomizedDatabasesMatchBitForBit) {
  // Fuzz the marginals: random small databases whose error probabilities
  // are drawn from {0, 1/4, 1/2, 3/4, 1} — deliberately including both
  // boundary values, where an off-by-one in the complement arithmetic or
  // a dropped certain atom would show up.
  Rng rng(20260807);
  for (int round = 0; round < 40; ++round) {
    auto vocabulary = std::make_shared<Vocabulary>();
    vocabulary->AddRelation("E", 2);
    vocabulary->AddRelation("S", 1);
    vocabulary->AddRelation("T", 1);
    int n = 2 + static_cast<int>(rng.NextBelow(2));  // universe 2 or 3
    Structure observed(vocabulary, n);
    for (int a = 0; a < n; ++a) {
      if (rng.NextBelow(2) == 0) observed.AddFact(1, {a});
      if (rng.NextBelow(2) == 0) observed.AddFact(2, {a});
      for (int b = 0; b < n; ++b) {
        if (rng.NextBelow(3) == 0) observed.AddFact(0, {a, b});
      }
    }
    UnreliableDatabase db(std::move(observed));
    // Perturb a handful of atoms (present or absent alike), keeping the
    // uncertain count far below the 2^u enumeration ceiling.
    for (int i = 0; i < 6; ++i) {
      GroundAtom atom;
      atom.relation = static_cast<int>(rng.NextBelow(3));
      int arity = atom.relation == 0 ? 2 : 1;
      for (int j = 0; j < arity; ++j) {
        atom.args.push_back(static_cast<int>(rng.NextBelow(n)));
      }
      db.SetErrorProbability(atom,
                             Rational(static_cast<int>(rng.NextBelow(5)), 4));
    }
    for (const char* query : kSafeQueries) {
      ExpectBitIdentical(MustParse(query), db,
                         "round " + std::to_string(round) + ": " + query);
    }
  }
}

TEST(ExtensionalTest, UnsafeQueryIsRefused) {
  UnreliableDatabase db = SmallUncertainDatabase();
  for (const char* query :
       {"exists x . exists y . E(x, y) & E(y, x)",       // self-join
        "exists x . exists y . S(x) & E(x, y) & T(y)",   // not hierarchical
        "S(x) & T(x)",                                   // quantifier-free
        "exists x . S(x) | T(x)"}) {                     // not conjunctive
    StatusOr<ReliabilityReport> result =
        ExtensionalReliability(MustParse(query), db);
    ASSERT_FALSE(result.ok()) << query;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << query;
  }
}

TEST(ExtensionalTest, UnknownRelationIsRefused) {
  UnreliableDatabase db = SmallUncertainDatabase();
  StatusOr<ReliabilityReport> result =
      ExtensionalReliability(MustParse("exists x . Zap(x)"), db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExtensionalTest, WorkBudgetTripsTheRun) {
  UnreliableDatabase db = SmallUncertainDatabase();
  RunContext ctx = RunContext::WithWorkBudget(2);
  StatusOr<ReliabilityReport> result = ExtensionalReliability(
      MustParse("exists x . exists y . E(x, y) & S(y)"), db, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(ctx.work_spent(), 0u);
}

TEST(ExtensionalTest, ChargesWorkProportionalToPlanSize) {
  UnreliableDatabase db = SmallUncertainDatabase();
  RunContext ctx;
  ReliabilityReport report = *ExtensionalReliability(
      MustParse("exists x . exists y . E(x, y) & S(y)"), db, &ctx);
  EXPECT_GT(report.work_units, 0u);
  EXPECT_EQ(ctx.work_spent(), report.work_units);
}

}  // namespace
}  // namespace qrel
