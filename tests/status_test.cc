#include "qrel/util/status.h"

#include <cstdint>
#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad probability");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad probability");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad probability");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusTest, UnavailableFactoryCarriesItsCode) {
  Status status = Status::Unavailable("queue full");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.ToString(), "UNAVAILABLE: queue full");
}

// kUnavailable means "not right now", not "your budget ran out": it must
// never be treated as a budget trip (which would make the engine try to
// degrade past an overloaded server).
TEST(StatusTest, UnavailableIsNotABudgetCode) {
  EXPECT_FALSE(IsBudgetStatusCode(StatusCode::kUnavailable));
}

// CLI exit codes are 10 + StatusCode; the enum order is load-bearing for
// scripts, so appending kUnavailable must have left every prior value
// stable and landed it at exit 20.
TEST(StatusTest, ExitCodeMappingStaysStable) {
  EXPECT_EQ(10 + static_cast<int>(StatusCode::kOk), 10);
  EXPECT_EQ(10 + static_cast<int>(StatusCode::kDeadlineExceeded), 16);
  EXPECT_EQ(10 + static_cast<int>(StatusCode::kResourceExhausted), 17);
  EXPECT_EQ(10 + static_cast<int>(StatusCode::kCancelled), 18);
  EXPECT_EQ(10 + static_cast<int>(StatusCode::kDataLoss), 19);
  EXPECT_EQ(10 + static_cast<int>(StatusCode::kUnavailable), 20);
}

TEST(StatusTest, BudgetFactoriesCarryTheirCodes) {
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("spent").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("stop").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "CANCELLED: stop");
}

TEST(StatusTest, IsBudgetStatusCode) {
  EXPECT_TRUE(IsBudgetStatusCode(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsBudgetStatusCode(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsBudgetStatusCode(StatusCode::kCancelled));
  EXPECT_FALSE(IsBudgetStatusCode(StatusCode::kOk));
  EXPECT_FALSE(IsBudgetStatusCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsBudgetStatusCode(StatusCode::kInternal));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

StatusOr<int> ParsePositive(int input) {
  if (input <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return input;
}

Status UseReturnIfError(int input, int* out) {
  StatusOr<int> parsed = ParsePositive(input);
  QREL_RETURN_IF_ERROR(parsed.status());
  *out = *parsed;
  return Status::Ok();
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  int out = 0;
  EXPECT_TRUE(UseReturnIfError(5, &out).ok());
  EXPECT_EQ(out, 5);
  Status status = UseReturnIfError(-5, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, ConvertingConstructionPreservesValue) {
  StatusOr<int> narrow(7);
  StatusOr<int64_t> wide = std::move(narrow);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide.value(), 7);
}

TEST(StatusOrTest, ConvertingConstructionPreservesError) {
  StatusOr<int> narrow(Status::NotFound("gone"));
  StatusOr<int64_t> wide = std::move(narrow);
  EXPECT_FALSE(wide.ok());
  EXPECT_EQ(wide.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(wide.status().message(), "gone");
}

TEST(StatusOrTest, ValueOr) {
  StatusOr<int> good(3);
  EXPECT_EQ(good.value_or(9), 3);
  StatusOr<int> bad(Status::Internal("boom"));
  EXPECT_EQ(bad.value_or(9), 9);
  StatusOr<std::string> moved(std::string("kept"));
  EXPECT_EQ(std::move(moved).value_or("fallback"), "kept");
}

StatusOr<int> DoubledPositive(int input) {
  QREL_ASSIGN_OR_RETURN(int parsed, ParsePositive(input));
  return parsed * 2;
}

TEST(StatusOrTest, AssignOrReturn) {
  StatusOr<int> doubled = DoubledPositive(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);
  EXPECT_EQ(DoubledPositive(-1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qrel
