#include "qrel/util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad probability");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad probability");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad probability");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

StatusOr<int> ParsePositive(int input) {
  if (input <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return input;
}

Status UseReturnIfError(int input, int* out) {
  StatusOr<int> parsed = ParsePositive(input);
  QREL_RETURN_IF_ERROR(parsed.status());
  *out = *parsed;
  return Status::Ok();
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  int out = 0;
  EXPECT_TRUE(UseReturnIfError(5, &out).ok());
  EXPECT_EQ(out, 5);
  Status status = UseReturnIfError(-5, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qrel
