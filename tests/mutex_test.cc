// Tests for the annotated mutex layer (util/mutex.h): basic exclusion,
// CondVar signalling, and — the part a plain std::mutex cannot do — the
// runtime lock-rank checker aborting on out-of-order acquisition.

#include "qrel/util/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/util/lock_ranks.h"

namespace qrel {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu(LockRank::kLeaf);
  EXPECT_EQ(mutex_internal::HeldLockCount(), 0);
  mu.Lock();
  EXPECT_EQ(mutex_internal::HeldLockCount(), 1);
  mu.Unlock();
  EXPECT_EQ(mutex_internal::HeldLockCount(), 0);
}

TEST(MutexTest, MutexLockIsScoped) {
  Mutex mu(LockRank::kLeaf);
  {
    MutexLock lock(&mu);
    EXPECT_EQ(mutex_internal::HeldLockCount(), 1);
  }
  EXPECT_EQ(mutex_internal::HeldLockCount(), 0);
}

TEST(MutexTest, AscendingRanksNest) {
  Mutex outer(LockRank::kServerCore);
  Mutex inner(LockRank::kResultCache);
  MutexLock outer_lock(&outer);
  MutexLock inner_lock(&inner);
  EXPECT_EQ(mutex_internal::HeldLockCount(), 2);
}

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mu(LockRank::kLeaf);
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 40000);
}

TEST(MutexTest, RankOrderViolationAborts) {
  EXPECT_DEATH(
      {
        Mutex inner(LockRank::kResultCache);
        Mutex outer(LockRank::kServerCore);
        MutexLock inner_lock(&inner);
        MutexLock outer_lock(&outer);  // kServerCore < kResultCache: abort
      },
      "lock-rank violation.*server-core.*result-cache");
}

TEST(MutexTest, SameRankReacquisitionAborts) {
  // Two locks of the same rank can never nest — that is exactly the
  // ordering ambiguity ranks exist to forbid (and it catches recursive
  // acquisition of a single mutex as a special case).
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kCatalog);
        Mutex b(LockRank::kCatalog);
        MutexLock lock_a(&a);
        MutexLock lock_b(&b);
      },
      "lock-rank violation.*catalog.*catalog");
}

TEST(MutexTest, ReleasingUnheldMutexAborts) {
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kLeaf);
        mu.Unlock();
      },
      "does not hold");
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu(LockRank::kLeaf);
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) {
      cv.Wait(mu);
    }
    EXPECT_TRUE(ready);
    // The wait re-acquired the lock and restored rank bookkeeping.
    EXPECT_EQ(mutex_internal::HeldLockCount(), 1);
  }
  waker.join();
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu(LockRank::kLeaf);
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_EQ(cv.WaitFor(mu, std::chrono::milliseconds(5)),
            std::cv_status::timeout);
  EXPECT_EQ(mutex_internal::HeldLockCount(), 1);
}

TEST(CondVarTest, WaitAllowsOtherThreadsToTakeHigherRanks) {
  // While blocked in Wait the caller's rank entry must be released, or a
  // thread legitimately acquiring a *lower*-ranked mutex after being woken
  // from a wait on a higher-ranked one would trip the checker.
  Mutex high(LockRank::kServerJob);
  Mutex low(LockRank::kServerCore);
  CondVar cv;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    MutexLock lock(&high);
    cv.Wait(high);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    MutexLock lock(&low);
    // With the waiter parked, this thread's own held-set is empty and the
    // acquisition is clean; now wake it while holding a lower rank.
    MutexLock nested(&high);  // serverCore -> serverJob: legal ascent
    cv.NotifyAll();
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
}

}  // namespace
}  // namespace qrel
