#include "qrel/propositional/kdnf_reduction.h"

#include <gtest/gtest.h>

#include "qrel/propositional/exact.h"
#include "qrel/propositional/karp_luby.h"
#include "qrel/util/rng.h"

namespace qrel {
namespace {

// Checks the defining identity of the reduction:
//   ν(φ) = (#models(φ'') − illegal) / legal.
void ExpectReductionCorrect(const Dnf& dnf,
                            const std::vector<Rational>& prob) {
  StatusOr<KdnfReduction> reduction = ReduceProbKdnfToSharpDnf(dnf, prob);
  ASSERT_TRUE(reduction.ok()) << reduction.status().ToString();
  BigInt count = CountDnfModels(reduction->phi_pp);
  Rational recovered = reduction->RecoverProbability(count);
  Rational exact = ShannonDnfProbability(dnf, prob);
  EXPECT_EQ(recovered, exact)
      << "recovered " << recovered.ToString() << " exact "
      << exact.ToString();
}

TEST(KdnfReductionTest, DyadicProbabilitiesNeedNoIllegalCorrection) {
  // ν(X) = 3/4: two bits, all four assignments legal... only when the
  // denominator is a power of two does legal == total.
  Dnf dnf(1);
  dnf.AddTerm({{0, true}});
  StatusOr<KdnfReduction> reduction =
      ReduceProbKdnfToSharpDnf(dnf, {Rational(3, 4)});
  ASSERT_TRUE(reduction.ok());
  EXPECT_EQ(reduction->legal_assignments, reduction->total_assignments);
  ExpectReductionCorrect(dnf, {Rational(3, 4)});
}

TEST(KdnfReductionTest, NonDyadicDenominator) {
  // ν(X) = 1/3: two bits, 3 legal values, 1 illegal.
  Dnf dnf(1);
  dnf.AddTerm({{0, true}});
  StatusOr<KdnfReduction> reduction =
      ReduceProbKdnfToSharpDnf(dnf, {Rational(1, 3)});
  ASSERT_TRUE(reduction.ok());
  EXPECT_EQ(reduction->bit_count, 2);
  EXPECT_EQ(reduction->legal_assignments.ToInt64(), 3);
  EXPECT_EQ(reduction->total_assignments.ToInt64(), 4);
  ExpectReductionCorrect(dnf, {Rational(1, 3)});
}

TEST(KdnfReductionTest, NegativeLiterals) {
  Dnf dnf(2);
  dnf.AddTerm({{0, false}, {1, true}});
  ExpectReductionCorrect(dnf, {Rational(2, 5), Rational(3, 7)});
}

TEST(KdnfReductionTest, DeterministicProbabilities) {
  Dnf dnf(2);
  dnf.AddTerm({{0, true}, {1, false}});
  ExpectReductionCorrect(dnf, {Rational(1), Rational(0)});
  ExpectReductionCorrect(dnf, {Rational(0), Rational(1)});
}

TEST(KdnfReductionTest, EmptyAndTautologicalFormulas) {
  Dnf empty(2);
  ExpectReductionCorrect(empty, {Rational(1, 3), Rational(2, 7)});

  Dnf tautology(2);
  tautology.AddTerm({});
  ExpectReductionCorrect(tautology, {Rational(1, 3), Rational(2, 7)});
}

TEST(KdnfReductionTest, MultiTermOverlap) {
  Dnf dnf(3);
  dnf.AddTerm({{0, true}, {1, true}});
  dnf.AddTerm({{1, true}, {2, false}});
  dnf.AddTerm({{0, false}});
  ExpectReductionCorrect(
      dnf, {Rational(1, 3), Rational(5, 6), Rational(2, 7)});
}

TEST(KdnfReductionTest, RespectsTermLimit) {
  Dnf dnf(4);
  dnf.AddTerm({{0, true}, {1, true}, {2, true}, {3, true}});
  std::vector<Rational> prob(4, Rational(123456789, 987654321));
  EXPECT_FALSE(ReduceProbKdnfToSharpDnf(dnf, prob, 4).ok());
}

TEST(KdnfReductionTest, FptrasThroughReductionApproximatesProbability) {
  // The end-to-end pipeline of Theorem 5.3: estimate #models(φ'') with the
  // Karp-Luby FPTRAS and recover ν(φ).
  Dnf dnf(3);
  dnf.AddTerm({{0, true}, {1, true}});
  dnf.AddTerm({{2, true}});
  std::vector<Rational> prob = {Rational(1, 3), Rational(2, 5),
                                Rational(1, 7)};
  KdnfReduction reduction = *ReduceProbKdnfToSharpDnf(dnf, prob);

  KarpLubyOptions options;
  options.epsilon = 0.01;
  options.delta = 0.01;
  options.seed = 321;
  KarpLubyResult count = *KarpLubyCount(reduction.phi_pp, options);
  double recovered = reduction.RecoverProbability(count.estimate);
  double exact = ShannonDnfProbability(dnf, prob).ToDouble();
  // The subtraction amplifies the relative error of the count; stay loose.
  EXPECT_NEAR(recovered, exact, 0.05);
}

class KdnfReductionPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(KdnfReductionPropertyTest, RandomFormulasRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    int variables = 1 + static_cast<int>(rng.NextBelow(4));
    Dnf dnf(variables);
    int terms = 1 + static_cast<int>(rng.NextBelow(4));
    for (int t = 0; t < terms; ++t) {
      std::vector<PropLiteral> term;
      int width = 1 + static_cast<int>(rng.NextBelow(2));
      for (int l = 0; l < width; ++l) {
        term.push_back({static_cast<int>(rng.NextBelow(
                            static_cast<uint64_t>(variables))),
                        rng.NextBernoulli(0.5)});
      }
      dnf.AddTerm(std::move(term));
    }
    std::vector<Rational> prob;
    for (int v = 0; v < variables; ++v) {
      int64_t den = 1 + static_cast<int64_t>(rng.NextBelow(9));
      int64_t num = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(den) + 1));
      prob.push_back(Rational(num, den));
    }
    ExpectReductionCorrect(dnf, prob);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdnfReductionPropertyTest,
                         ::testing::Values(3u, 14u, 159u, 2653u));

}  // namespace
}  // namespace qrel
