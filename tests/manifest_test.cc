// net/manifest: the durable catalog manifest and the idempotency journal.
// Round trips, the canonical-encoding fixpoint the fuzz harness relies
// on, the typed corruption taxonomy via full byte-flip and truncation
// sweeps over the serialized container, and the grammar rules (strict
// name ordering, version >= 1, bounded entry count, key validity).

#include "qrel/net/manifest.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qrel {
namespace {

CatalogManifest SampleManifest() {
  CatalogManifest manifest;
  manifest.entries.push_back({"alpha", "/data/alpha.udb", 3, 0x1111});
  manifest.entries.push_back({"beta", "/data/beta.udb", 1, 0x2222});
  manifest.entries.push_back({"gamma.v2", "relative/path.udb", 17, 0x3333});
  return manifest;
}

IdempotencyRecord SampleRecord() {
  IdempotencyRecord record;
  record.key = "req-2024.retry_01";
  record.flight_key = 0xfeedface;
  record.store_key = 0xdeadbeef;
  record.db_fingerprint = 0xabcdef01;
  return record;
}

TEST(ManifestTest, EncodeDecodeRoundTrip) {
  CatalogManifest manifest = SampleManifest();
  StatusOr<CatalogManifest> decoded = DecodeManifest(EncodeManifest(manifest));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->entries, manifest.entries);
}

TEST(ManifestTest, EmptyManifestRoundTrips) {
  StatusOr<CatalogManifest> decoded =
      DecodeManifest(EncodeManifest(CatalogManifest{}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->entries.empty());
}

TEST(ManifestTest, EncodingIsCanonical) {
  // Decode(Encode(x)) re-encodes byte-identically — with the container
  // layer included. This is the fixpoint the fuzz harness asserts on
  // arbitrary accepted inputs; strict name ordering, the recomputed
  // fingerprint, and work_spent == 0 make it hold by construction.
  SnapshotData data = EncodeManifest(SampleManifest());
  std::vector<uint8_t> bytes = EncodeSnapshot(data);
  StatusOr<SnapshotData> container = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(container.ok());
  StatusOr<CatalogManifest> manifest = DecodeManifest(*container);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(EncodeSnapshot(EncodeManifest(*manifest)), bytes);
}

TEST(ManifestTest, WrongKindIsInvalidArgument) {
  SnapshotData data = EncodeManifest(SampleManifest());
  data.kind = "something.else.v1";
  StatusOr<CatalogManifest> decoded = DecodeManifest(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ManifestTest, NonzeroWorkCounterIsDataLoss) {
  SnapshotData data = EncodeManifest(SampleManifest());
  data.work_spent = 5;
  StatusOr<CatalogManifest> decoded = DecodeManifest(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ManifestTest, UnsortedEntriesAreDataLoss) {
  CatalogManifest manifest;
  manifest.entries.push_back({"beta", "/b.udb", 1, 2});
  manifest.entries.push_back({"alpha", "/a.udb", 1, 1});
  SnapshotData data = EncodeManifest(manifest);
  StatusOr<CatalogManifest> decoded = DecodeManifest(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ManifestTest, DuplicateNamesAreDataLoss) {
  CatalogManifest manifest;
  manifest.entries.push_back({"alpha", "/a.udb", 1, 1});
  manifest.entries.push_back({"alpha", "/b.udb", 2, 2});
  StatusOr<CatalogManifest> decoded = DecodeManifest(EncodeManifest(manifest));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ManifestTest, VersionZeroIsDataLoss) {
  CatalogManifest manifest;
  manifest.entries.push_back({"alpha", "/a.udb", 0, 1});
  StatusOr<CatalogManifest> decoded = DecodeManifest(EncodeManifest(manifest));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ManifestTest, InvalidNameIsRejected) {
  CatalogManifest manifest;
  manifest.entries.push_back({"bad name!", "/a.udb", 1, 1});
  StatusOr<CatalogManifest> decoded = DecodeManifest(EncodeManifest(manifest));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ManifestTest, OversizedEntryCountIsDataLoss) {
  // Hand-build a payload claiming more entries than the hard cap, without
  // materializing them.
  SnapshotWriter writer;
  writer.U32(static_cast<uint32_t>(kMaxManifestEntries + 1));
  SnapshotData data;
  data.kind = kCatalogManifestKind;
  data.fingerprint = 0;
  data.work_spent = 0;
  data.payload = writer.TakeBytes();
  StatusOr<CatalogManifest> decoded = DecodeManifest(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ManifestTest, FingerprintMismatchIsDataLoss) {
  SnapshotData data = EncodeManifest(SampleManifest());
  data.fingerprint ^= 1;
  StatusOr<CatalogManifest> decoded = DecodeManifest(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

// --- Corruption corpus over the full serialized container ------------------

TEST(ManifestCorruptionTest, TruncationAtEveryLengthIsTyped) {
  std::vector<uint8_t> bytes = EncodeSnapshot(EncodeManifest(SampleManifest()));
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<SnapshotData> container = DecodeSnapshot(bytes.data(), len);
    if (!container.ok()) {
      StatusCode code = container.status().code();
      EXPECT_TRUE(code == StatusCode::kDataLoss ||
                  code == StatusCode::kInvalidArgument)
          << "truncated to " << len << ": " << container.status().ToString();
      continue;
    }
    StatusOr<CatalogManifest> decoded = DecodeManifest(*container);
    ASSERT_FALSE(decoded.ok()) << "truncated to " << len << " decoded";
  }
}

TEST(ManifestCorruptionTest, EveryFlippedByteIsDetected) {
  std::vector<uint8_t> bytes = EncodeSnapshot(EncodeManifest(SampleManifest()));
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x40;
    StatusOr<SnapshotData> container =
        DecodeSnapshot(corrupt.data(), corrupt.size());
    // The container checksum catches every flip below it; a flip that
    // somehow decoded at the container layer must still fail the manifest
    // fingerprint or grammar. No flip may produce a usable manifest.
    if (container.ok()) {
      StatusOr<CatalogManifest> decoded = DecodeManifest(*container);
      ASSERT_FALSE(decoded.ok()) << "flip at offset " << i << " decoded";
    }
  }
}

// --- File helpers ----------------------------------------------------------

TEST(ManifestFileTest, WriteReadRoundTripAndFreshIsNotFound) {
  std::string path = ::testing::TempDir() + "/manifest_test.manifest";
  StatusOr<CatalogManifest> fresh = ReadManifestFile(path + ".absent");
  ASSERT_FALSE(fresh.ok());
  EXPECT_EQ(fresh.status().code(), StatusCode::kNotFound);

  CatalogManifest manifest = SampleManifest();
  ASSERT_TRUE(WriteManifestFile(path, manifest).ok());
  StatusOr<CatalogManifest> loaded = ReadManifestFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entries, manifest.entries);
  std::remove(path.c_str());
}

// --- Idempotency journal ---------------------------------------------------

TEST(IdempotencyTest, RecordRoundTripsAndIsCanonical) {
  IdempotencyRecord record = SampleRecord();
  SnapshotData data = EncodeIdempotencyRecord(record);
  StatusOr<IdempotencyRecord> decoded = DecodeIdempotencyRecord(data);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, record);
  EXPECT_EQ(EncodeSnapshot(EncodeIdempotencyRecord(*decoded)),
            EncodeSnapshot(data));
}

TEST(IdempotencyTest, WrongKindAndTamperedFingerprintAreTyped) {
  SnapshotData data = EncodeIdempotencyRecord(SampleRecord());
  SnapshotData wrong_kind = data;
  wrong_kind.kind = kCatalogManifestKind;
  EXPECT_EQ(DecodeIdempotencyRecord(wrong_kind).status().code(),
            StatusCode::kInvalidArgument);
  SnapshotData tampered = data;
  tampered.fingerprint ^= 1;
  EXPECT_EQ(DecodeIdempotencyRecord(tampered).status().code(),
            StatusCode::kDataLoss);
}

TEST(IdempotencyTest, MalformedKeyInJournalIsDataLoss) {
  IdempotencyRecord record = SampleRecord();
  record.key = "spaces are invalid";
  StatusOr<IdempotencyRecord> decoded =
      DecodeIdempotencyRecord(EncodeIdempotencyRecord(record));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(IdempotencyTest, KeyGrammarMatchesCatalogNames) {
  EXPECT_TRUE(ValidIdempotencyKey("retry-1"));
  EXPECT_TRUE(ValidIdempotencyKey("a.b_c-d"));
  EXPECT_FALSE(ValidIdempotencyKey(""));
  EXPECT_FALSE(ValidIdempotencyKey("has space"));
  EXPECT_FALSE(ValidIdempotencyKey(std::string(65, 'k')));
  EXPECT_FALSE(ValidIdempotencyKey("semi;colon"));
}

TEST(IdempotencyTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/idem_test.idem";
  IdempotencyRecord record = SampleRecord();
  ASSERT_TRUE(WriteIdempotencyFile(path, record).ok());
  StatusOr<IdempotencyRecord> loaded = ReadIdempotencyFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, record);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qrel
