#include "qrel/logic/simplify.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/logic/classify.h"
#include "qrel/logic/parser.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

std::string Simplified(const std::string& text) {
  return SimplifyFormula(MustParse(text))->ToString();
}

// The printer's rendering of `text` as parsed — lets expectations be
// written in surface syntax instead of the printer's parenthesisation.
std::string Canonical(const std::string& text) {
  return MustParse(text)->ToString();
}

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_EQ(Simplified("x = x"), Canonical("true"));
  EXPECT_EQ(Simplified("#1 = #1"), Canonical("true"));
  EXPECT_EQ(Simplified("#1 = #2"), Canonical("false"));
  EXPECT_EQ(Simplified("!(#1 = #2)"), Canonical("true"));
  EXPECT_EQ(Simplified("S(x) & x = x"), Canonical("S(x)"));
  EXPECT_EQ(Simplified("S(x) | x = x"), Canonical("true"));
  EXPECT_EQ(Simplified("S(x) & #1 = #2"), Canonical("false"));
  EXPECT_EQ(Simplified("S(x) | #1 = #2"), Canonical("S(x)"));
}

TEST(SimplifyTest, DoubleNegation) {
  EXPECT_EQ(Simplified("!!S(x)"), Canonical("S(x)"));
  EXPECT_EQ(Simplified("!!!!S(x)"), Canonical("S(x)"));
  EXPECT_EQ(Simplified("!!!S(x)"), Canonical("!S(x)"));
  EXPECT_EQ(Simplified("!!(exists x . S(x))"), Canonical("exists x . S(x)"));
}

TEST(SimplifyTest, DoubleNegationRestoresQuantifierClass) {
  // !!∃ is classified existential only through NNF; dropping the double
  // negation makes it syntactically conjunctive — and ∃x S(x) is even
  // safe — a strictly better rung.
  FormulaPtr original = MustParse("!!(exists x . S(x))");
  EXPECT_EQ(Classify(original), QueryClass::kExistential);
  EXPECT_EQ(Classify(SimplifyFormula(original)),
            QueryClass::kSafeConjunctive);

  // The universal dual stays universal (never worse).
  FormulaPtr universal = MustParse("!!(forall x . S(x))");
  EXPECT_EQ(Classify(SimplifyFormula(universal)), QueryClass::kUniversal);
}

TEST(SimplifyTest, ImplicationDesugaring) {
  EXPECT_EQ(Simplified("S(x) -> S(x)"), Canonical("true"));
  EXPECT_EQ(Simplified("true -> S(x)"), Canonical("S(x)"));
  EXPECT_EQ(Simplified("false -> S(x)"), Canonical("true"));
  EXPECT_EQ(Simplified("S(x) -> false"), Canonical("!S(x)"));
  EXPECT_EQ(Simplified("S(x) -> true"), Canonical("true"));
  EXPECT_EQ(Simplified("S(x) -> T(x)"), Canonical("!S(x) | T(x)"));
}

TEST(SimplifyTest, IffFolding) {
  EXPECT_EQ(Simplified("S(x) <-> S(x)"), Canonical("true"));
  EXPECT_EQ(Simplified("S(x) <-> true"), Canonical("S(x)"));
  EXPECT_EQ(Simplified("S(x) <-> false"), Canonical("!S(x)"));
  EXPECT_EQ(Simplified("false <-> S(x)"), Canonical("!S(x)"));
}

TEST(SimplifyTest, VacuousQuantifiers) {
  // The binder never occurs in the body.
  EXPECT_EQ(Simplified("exists x . S(y)"), Canonical("S(y)"));
  EXPECT_EQ(Simplified("forall x . S(y)"), Canonical("S(y)"));
  // Constant bodies (sound because universes are non-empty).
  EXPECT_EQ(Simplified("exists x . y = y"), Canonical("true"));
  EXPECT_EQ(Simplified("forall x . #1 = #2"), Canonical("false"));
  // Nested vacuous binders all fall away.
  EXPECT_EQ(Simplified("exists x . forall y . S(z)"), Canonical("S(z)"));
  // A used binder stays.
  EXPECT_EQ(Simplified("exists x . S(x)"), Canonical("exists x . S(x)"));
}

TEST(SimplifyTest, ContradictionsAndTautologies) {
  EXPECT_EQ(Simplified("S(x) & !S(x)"), Canonical("false"));
  EXPECT_EQ(Simplified("S(x) | !S(x)"), Canonical("true"));
  EXPECT_EQ(Simplified("S(x) & T(x) & !S(x)"), Canonical("false"));
  EXPECT_EQ(Simplified("exists x . S(x) & !S(x)"), Canonical("false"));
  // Duplicates collapse.
  EXPECT_EQ(Simplified("S(x) & S(x)"), Canonical("S(x)"));
  EXPECT_EQ(Simplified("S(x) | S(x) | S(x)"), Canonical("S(x)"));
}

TEST(SimplifyTest, FlattensNestedConnectives) {
  // (S & (T & S)) has a duplicate only visible after flattening.
  EXPECT_EQ(Simplified("S(x) & (T(x) & S(x))"), Canonical("S(x) & T(x)"));
  EXPECT_EQ(Simplified("S(x) | (T(x) | !S(x))"), Canonical("true"));
}

TEST(SimplifyTest, EqualitiesInConjunctiveQueries) {
  // A CQ with a trivial equality stays a CQ (and sheds the equality).
  FormulaPtr query = MustParse("exists x . S(x) & E(x, y) & x = x");
  EXPECT_EQ(Classify(query), QueryClass::kSafeConjunctive);
  FormulaPtr simplified = SimplifyFormula(query);
  EXPECT_EQ(simplified->ToString(), Canonical("exists x . S(x) & E(x, y)"));
  EXPECT_EQ(Classify(simplified), QueryClass::kSafeConjunctive);
  // A non-trivial equality is kept: it constrains the assignment.
  EXPECT_EQ(Simplified("exists x . S(x) & x = y"),
            Canonical("exists x . S(x) & x = y"));
}

TEST(SimplifyTest, Idempotent) {
  const std::vector<std::string> formulas = {
      "S(x)",
      "!!S(x)",
      "S(x) -> T(x)",
      "exists x . S(y)",
      "S(x) & !S(x)",
      "forall x . S(x) -> (exists y . E(x, y))",
      "S(x) <-> T(y)",
      "exists x . S(x) & x = x & E(x, y)",
  };
  for (const std::string& text : formulas) {
    FormulaPtr once = SimplifyFormula(MustParse(text));
    FormulaPtr twice = SimplifyFormula(once);
    EXPECT_EQ(once->ToString(), twice->ToString()) << text;
  }
}

TEST(SimplifyTest, PlanRankNeverWorse) {
  // The simplifier contract: across a catalog covering every class and
  // every rewrite, the simplified class is never a worse rung.
  const std::vector<std::string> formulas = {
      "S(x)",
      "S(x) & E(x, y)",
      "exists x . S(x) & E(x, x)",
      "exists x . S(x) | E(x, x)",
      "forall x . S(x)",
      "forall x . exists y . E(x, y)",
      "!!(exists x . S(x))",
      "!(forall x . !S(x))",
      "S(x) -> T(x)",
      "exists x . S(y)",
      "forall x . S(x) -> T(x)",
      "S(x) & !S(x)",
      "S(x) | !S(x)",
      "exists x . S(x) & x = x",
      "S(x) <-> S(x)",
      "forall x . (S(x) & true) | #1 = #2",
  };
  for (const std::string& text : formulas) {
    FormulaPtr original = MustParse(text);
    FormulaPtr simplified = SimplifyFormula(original);
    EXPECT_LE(PlanRank(Classify(simplified)), PlanRank(Classify(original)))
        << text << " simplified to " << simplified->ToString();
  }
}

TEST(SimplifyTest, PreservesRanges) {
  FormulaPtr formula = MustParse("S(x) & (T(x) & S(x))");
  FormulaPtr simplified = SimplifyFormula(formula);
  // The rebuilt conjunction keeps the original node's source range.
  EXPECT_TRUE(simplified->range.valid());
  EXPECT_EQ(simplified->range.begin, formula->range.begin);
  EXPECT_EQ(simplified->range.end, formula->range.end);
}

}  // namespace
}  // namespace qrel
