#include "qrel/logic/parser.h"

#include <gtest/gtest.h>

namespace qrel {
namespace {

// Parses, printing the status on failure.
FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  return *result;
}

TEST(ParserTest, ParsesAtoms) {
  EXPECT_EQ(MustParse("E(x, y)")->ToString(), "E(x, y)");
  EXPECT_EQ(MustParse("S(x)")->ToString(), "S(x)");
  EXPECT_EQ(MustParse("P()")->ToString(), "P()");
  EXPECT_EQ(MustParse("E(x, 3)")->ToString(), "E(x, #3)");
  EXPECT_EQ(MustParse("E(#1, #2)")->ToString(), "E(#1, #2)");
}

TEST(ParserTest, ParsesEqualities) {
  EXPECT_EQ(MustParse("x = y")->ToString(), "x = y");
  EXPECT_EQ(MustParse("x != y")->ToString(), "!(x = y)");
  EXPECT_EQ(MustParse("x = 3")->ToString(), "x = #3");
}

TEST(ParserTest, PrecedenceAndBeforeOr) {
  FormulaPtr formula = MustParse("S(x) | T(x) & U(x)");
  EXPECT_EQ(formula->kind, FormulaKind::kOr);
  EXPECT_EQ(formula->ToString(), "(S(x) | (T(x) & U(x)))");
}

TEST(ParserTest, PrecedenceOrBeforeImplies) {
  EXPECT_EQ(MustParse("S(x) | T(x) -> U(x)")->ToString(),
            "((S(x) | T(x)) -> U(x))");
}

TEST(ParserTest, ImpliesRightAssociative) {
  EXPECT_EQ(MustParse("S(x) -> T(x) -> U(x)")->ToString(),
            "(S(x) -> (T(x) -> U(x)))");
}

TEST(ParserTest, IffLowestPrecedence) {
  EXPECT_EQ(MustParse("S(x) -> T(x) <-> U(x)")->ToString(),
            "((S(x) -> T(x)) <-> U(x))");
}

TEST(ParserTest, NegationBindsTight) {
  EXPECT_EQ(MustParse("!S(x) & T(x)")->ToString(), "(!(S(x)) & T(x))");
  EXPECT_EQ(MustParse("!(S(x) & T(x))")->ToString(), "!((S(x) & T(x)))");
  EXPECT_EQ(MustParse("!!S(x)")->ToString(), "!(!(S(x)))");
}

TEST(ParserTest, QuantifiersScopeRight) {
  EXPECT_EQ(MustParse("exists x . S(x) & T(x)")->ToString(),
            "exists x . ((S(x) & T(x)))");
  EXPECT_EQ(MustParse("forall x . S(x) -> T(x)")->ToString(),
            "forall x . ((S(x) -> T(x)))");
}

TEST(ParserTest, MultiVariableQuantifier) {
  FormulaPtr formula = MustParse("exists x y z . L(x,y) & R(x,z)");
  EXPECT_EQ(formula->kind, FormulaKind::kExists);
  EXPECT_EQ(formula->bound_variable, "x");
  EXPECT_EQ(formula->children[0]->bound_variable, "y");
  EXPECT_EQ(formula->children[0]->children[0]->bound_variable, "z");
}

TEST(ParserTest, PaperQueries) {
  // Proposition 3.2's conjunctive query.
  FormulaPtr prop32 =
      MustParse("exists x y z . L(x,y) & R(x,z) & S(y) & S(z)");
  EXPECT_TRUE(prop32->FreeVariables().empty());

  // Lemma 5.9's non-4-colouring query.
  FormulaPtr lemma59 = MustParse(
      "exists x y . E(x,y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))");
  EXPECT_TRUE(lemma59->FreeVariables().empty());
}

TEST(ParserTest, TrueFalseKeywords) {
  EXPECT_EQ(MustParse("true")->kind, FormulaKind::kTrue);
  EXPECT_EQ(MustParse("false")->kind, FormulaKind::kFalse);
  EXPECT_EQ(MustParse("true & S(x)")->ToString(), "(true & S(x))");
}

TEST(ParserTest, RoundTripThroughToString) {
  for (const std::string text : {
           "exists x y z . L(x,y) & R(x,z) & S(y) & S(z)",
           "forall x . S(x) -> exists y . E(x,y)",
           "!(S(x) | T(y)) <-> U(z)",
           "exists x . x = #2 & S(x)",
           "P() & !Q()",
       }) {
    FormulaPtr first = MustParse(text);
    FormulaPtr second = MustParse(first->ToString());
    EXPECT_EQ(first->ToString(), second->ToString()) << text;
  }
}

TEST(ParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(ParseFormula("").ok());
  EXPECT_FALSE(ParseFormula("S(x").ok());
  EXPECT_FALSE(ParseFormula("S(x))").ok());
  EXPECT_FALSE(ParseFormula("S(x) &").ok());
  EXPECT_FALSE(ParseFormula("& S(x)").ok());
  EXPECT_FALSE(ParseFormula("exists . S(x)").ok());
  EXPECT_FALSE(ParseFormula("exists x S(x)").ok());
  EXPECT_FALSE(ParseFormula("S(x) T(y)").ok());
  EXPECT_FALSE(ParseFormula("x").ok());
  EXPECT_FALSE(ParseFormula("x =").ok());
  EXPECT_FALSE(ParseFormula("S(x,)").ok());
  EXPECT_FALSE(ParseFormula("<- S(x)").ok());
  EXPECT_FALSE(ParseFormula("S(x) - T(y)").ok());
}

TEST(ParserTest, ErrorsMentionPosition) {
  Status status = ParseFormula("S(x) @ T(y)").status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("position"), std::string::npos);
}

TEST(ParserTest, ModeratelyNestedFormulasStillParse) {
  // Below the limit of 256 frames; a parenthesis costs a few frames per
  // level (it restarts the precedence chain), a negation costs one.
  std::string negations(200, '!');
  negations += "S(x)";
  EXPECT_TRUE(ParseFormula(negations).ok());

  std::string parens = std::string(64, '(') + "S(x)" + std::string(64, ')');
  EXPECT_TRUE(ParseFormula(parens).ok());
}

// A deeply nested input must hit the depth limit with a typed error, not
// overflow the process stack.
TEST(ParserTest, DeepNestingIsRejectedNotACrash) {
  const int depth = 100000;
  const char* expected = "formula nesting too deep";

  std::string negations(depth, '!');
  negations += "S(x)";
  Status status = ParseFormula(negations).status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(expected), std::string::npos);

  std::string parens = std::string(depth, '(') + "S(x)" +
                       std::string(depth, ')');
  status = ParseFormula(parens).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(expected), std::string::npos);

  // Right-associative chains recurse directly without parentheses.
  std::string implications = "S(x)";
  for (int i = 0; i < depth; ++i) {
    implications += " -> S(x)";
  }
  status = ParseFormula(implications).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(expected), std::string::npos);
}

}  // namespace
}  // namespace qrel
