// Concurrency stress: 16 threads hammering one QrelServer — admin-verb
// churn (ATTACH/RELOAD/DETACH), concurrent queries routed at both the
// stable and the churned databases, result-cache single-flight dedup,
// checkpointer claim election, and stats/health polling — all at once.
//
// There are no timing assertions; the test asserts invariants that any
// interleaving must preserve (typed errors only, cache answers
// bit-identical, at most one active CheckpointScope per Checkpointer)
// and otherwise exists to give the TSan build (-DQREL_SANITIZE=thread)
// and the lock-rank checker real contention to chew on. Runtime is
// bounded by iteration counts, not wall clock.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/net/protocol.h"
#include "qrel/net/server.h"
#include "qrel/prob/text_format.h"
#include "qrel/util/run_context.h"
#include "qrel/util/snapshot.h"

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
absent E 2 0 err=1/5
)";

constexpr char kAltUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/2
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
)";

UnreliableDatabase TestDatabase() {
  StatusOr<UnreliableDatabase> database = ParseUdb(kUdbText);
  EXPECT_TRUE(database.ok()) << database.status().ToString();
  return std::move(database).value();
}

std::string WriteTempUdb(const std::string& name, const char* text) {
  std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::fputs(text, f);
  std::fclose(f);
  return path;
}

Request QueryRequest(const std::string& query, const std::string& db = "") {
  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = query;
  request.options.db = db;
  return request;
}

Request AdminRequest(RequestVerb verb, const std::string& target,
                     const std::string& path = "") {
  Request request;
  request.verb = verb;
  request.target = target;
  request.path = path;
  return request;
}

// A churned database is a moving target: every error a racing request can
// legitimately see is typed. Anything else is a real bug.
bool AcceptableChurnOutcome(const Response& response) {
  switch (response.status.code()) {
    case StatusCode::kOk:
    case StatusCode::kNotFound:            // detached just before the lookup
    case StatusCode::kFailedPrecondition:  // attach/detach racing each other
    case StatusCode::kUnavailable:         // draining for detach
    case StatusCode::kCancelled:           // in-flight when detach cancelled
    case StatusCode::kInvalidArgument:     // reload raced a rewrite mid-file
      return true;
    default:
      return false;
  }
}

TEST(ConcurrencyStressTest, SixteenThreadsOneServer) {
  ServerOptions options;
  options.workers = 4;
  options.default_max_work = uint64_t{1} << 27;
  options.max_request_work = uint64_t{1} << 27;
  options.work_quota = uint64_t{1} << 40;  // never quota-shed under stress
  options.cache_capacity = 8;
  QrelServer server(ReliabilityEngine(TestDatabase()), options);

  constexpr int kAdminThreads = 4;
  constexpr int kQueryThreads = 6;
  constexpr int kFlightThreads = 2;
  constexpr int kClaimThreads = 2;
  constexpr int kStatsThreads = 2;
  constexpr int kIterations = 40;

  std::atomic<bool> failed{false};
  auto check = [&](bool ok, const char* what, const Response& response) {
    if (!ok && !failed.exchange(true)) {
      ADD_FAILURE() << what << ": " << response.status.ToString();
    }
  };

  // Claim election target shared by the claim threads.
  Checkpointer checkpointer(
      ::testing::TempDir() + "qrel_stress_claim.snap",
      std::chrono::milliseconds(1 << 30));  // interval: never auto-writes
  std::atomic<int> active_scopes{0};
  std::atomic<int> max_active_scopes{0};

  std::vector<std::thread> threads;
  threads.reserve(kAdminThreads + kQueryThreads + kFlightThreads +
                  kClaimThreads + kStatsThreads);

  // --- Admin churn: each thread attaches, reloads, queries, and detaches
  // its own database name, with the file contents flapping between two
  // per-thread texts so reloads really swap versions. The contents are
  // made unique per thread (and distinct from the default database):
  // in-flight accounting and detach-drain key on the content fingerprint,
  // so two databases with identical bytes share a drain domain and a
  // DETACH of one would cancel the other's queued work.
  for (int t = 0; t < kAdminThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string db = "churn" + std::to_string(t);
      std::string file = "qrel_stress_" + db + ".udb";
      std::string self = std::to_string(t % 3);
      std::string text_a = std::string(kUdbText) + "fact E " + self + " " +
                           self + " err=1/" + std::to_string(7 + t) + "\n";
      std::string text_b = std::string(kAltUdbText) + "fact E " + self + " " +
                           self + " err=1/" + std::to_string(17 + t) + "\n";
      for (int i = 0; i < kIterations; ++i) {
        std::string path = WriteTempUdb(
            file, ((i % 2 == 0) ? text_a : text_b).c_str());
        Response attached =
            server.Handle(AdminRequest(RequestVerb::kAttach, db, path));
        check(AcceptableChurnOutcome(attached), "attach", attached);
        WriteTempUdb(file, ((i % 2 == 0) ? text_b : text_a).c_str());
        Response reloaded =
            server.Handle(AdminRequest(RequestVerb::kReload, db));
        check(AcceptableChurnOutcome(reloaded), "reload", reloaded);
        Response queried =
            server.Handle(QueryRequest("exists x y . E(x,y) & S(y)", db));
        check(AcceptableChurnOutcome(queried), "churn query", queried);
        Response detached =
            server.Handle(AdminRequest(RequestVerb::kDetach, db));
        check(AcceptableChurnOutcome(detached), "detach", detached);
      }
      Request dblist;
      dblist.verb = RequestVerb::kDblist;
      (void)server.Handle(dblist);
    });
  }

  // --- Steady queries against the never-detached default database: these
  // must always succeed with the same exact value, churn or no churn.
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      const char* queries[] = {"exists x y . E(x,y) & S(y)", "S(x)",
                               "exists x . S(x)"};
      for (int i = 0; i < kIterations; ++i) {
        Response response =
            server.Handle(QueryRequest(queries[(t + i) % 3]));
        check(response.ok(), "default-db query", response);
      }
    });
  }

  // --- Single-flight: both threads issue the same query; whether a
  // replay, a join on an in-flight leader, or a fresh miss, the value
  // must be bit-identical.
  for (int t = 0; t < kFlightThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        Response response =
            server.Handle(QueryRequest("exists x y . E(x,y) & S(y)"));
        check(response.ok(), "single-flight query", response);
        if (response.ok() &&
            response.Field("exact_value").value_or("") != "3/5" &&
            !failed.exchange(true)) {
          ADD_FAILURE() << "cache returned a non-identical answer: "
                        << response.Field("exact_value").value_or("");
        }
      }
    });
  }

  // --- Checkpointer claim election: every thread constructs scopes on
  // its own RunContext against the shared Checkpointer; at most one scope
  // may ever be active simultaneously.
  for (int t = 0; t < kClaimThreads; ++t) {
    threads.emplace_back([&] {
      RunContext ctx;
      ctx.SetCheckpointer(&checkpointer);
      for (int i = 0; i < kIterations * 4; ++i) {
        CheckpointScope scope(&ctx, "stress.v1", /*fingerprint=*/7);
        if (scope.active()) {
          int now = active_scopes.fetch_add(1, std::memory_order_acq_rel) + 1;
          int seen = max_active_scopes.load(std::memory_order_relaxed);
          while (now > seen && !max_active_scopes.compare_exchange_weak(
                                   seen, now, std::memory_order_relaxed)) {
          }
          active_scopes.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    });
  }

  // --- Stats/health polling reads every counter the other threads bump.
  for (int t = 0; t < kStatsThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations * 2; ++i) {
        Request stats;
        stats.verb = RequestVerb::kStats;
        Response response = server.Handle(stats);
        check(response.ok(), "stats", response);
        Request health;
        health.verb = RequestVerb::kHealth;
        response = server.Handle(health);
        check(response.ok(), "health", response);
        (void)server.stats_snapshot();
      }
    });
  }

  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_LE(max_active_scopes.load(), 1)
      << "two CheckpointScopes were active on one Checkpointer at once";
  EXPECT_GE(max_active_scopes.load(), 1)
      << "claim election never elected anyone";

  // The server still serves after the storm, and a final drain completes.
  Response response = server.Handle(QueryRequest("S(x)"));
  EXPECT_TRUE(response.ok()) << response.status.ToString();
  server.Drain();
}

}  // namespace
}  // namespace qrel
