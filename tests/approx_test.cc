#include "qrel/core/approx.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "qrel/core/reliability.h"
#include "qrel/logic/parser.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

UnreliableDatabase SmallDatabase() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("S", 1);
  Structure observed(vocabulary, 3);
  observed.AddFact(0, {0, 1});
  observed.AddFact(0, {1, 2});
  observed.AddFact(1, {0});
  UnreliableDatabase db(std::move(observed));
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 3));
  db.SetErrorProbability(GroundAtom{0, {2, 2}}, Rational(1, 5));
  return db;
}

TEST(FptrasTest, RejectsNonExistentialQueries) {
  UnreliableDatabase db = SmallDatabase();
  ApproxOptions options;
  EXPECT_FALSE(ExistentialProbabilityFptras(
                   MustParse("forall x . S(x)"), db, {}, options)
                   .ok());
}

TEST(FptrasTest, RejectsBadParameters) {
  UnreliableDatabase db = SmallDatabase();
  ApproxOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(ExistentialProbabilityFptras(MustParse("exists x . S(x)"),
                                            db, {}, options)
                   .ok());
  options.epsilon = 0.1;
  EXPECT_FALSE(ExistentialProbabilityFptras(MustParse("exists x . S(x)"),
                                            db, {0}, options)
                   .ok());
}

TEST(FptrasTest, CertainQueriesNeedNoSamples) {
  UnreliableDatabase db = SmallDatabase();
  ApproxOptions options;
  // ∃x∃y E(x,y): E(1,2) is certainly true.
  ApproxResult result = *ExistentialProbabilityFptras(
      MustParse("exists x y . E(x, y)"), db, {}, options);
  EXPECT_EQ(result.estimate, 1.0);
  EXPECT_EQ(result.samples, 0u);
  // ∃x E(x,x) & S(#2)... E(2,2) uncertain but S(2) certainly false makes
  // a conjunct false; here choose a certainly-false query instead.
  result = *ExistentialProbabilityFptras(
      MustParse("exists x . E(x, x) & S(#2)"), db, {}, options);
  EXPECT_EQ(result.estimate, 0.0);
  EXPECT_EQ(result.samples, 0u);
}

TEST(FptrasTest, MatchesExactProbabilityWithinRelativeError) {
  UnreliableDatabase db = SmallDatabase();
  for (const std::string text : {
           "exists x . S(x)",
           "exists x . !S(x)",
           "exists x y . E(x, y) & S(y)",
           "exists x . E(x, x)",
           "exists x . S(x) & x != #0",
       }) {
    FormulaPtr query = MustParse(text);
    double exact = ExactQueryProbability(query, db, {})->ToDouble();
    ApproxOptions options;
    options.epsilon = 0.04;
    options.delta = 0.01;
    options.seed = 31337;
    ApproxResult result =
        *ExistentialProbabilityFptras(query, db, {}, options);
    if (exact == 0.0) {
      EXPECT_EQ(result.estimate, 0.0) << text;
    } else {
      EXPECT_NEAR(result.estimate, exact, 3 * options.epsilon * exact)
          << text;
    }
  }
}

TEST(FptrasTest, FreeVariableInstantiation) {
  UnreliableDatabase db = SmallDatabase();
  FormulaPtr query = MustParse("exists y . E(x, y) & S(y)");
  ApproxOptions options;
  options.epsilon = 0.04;
  options.delta = 0.01;
  options.seed = 99;
  for (Element a = 0; a < 3; ++a) {
    double exact = ExactQueryProbability(query, db, {a})->ToDouble();
    ApproxResult result =
        *ExistentialProbabilityFptras(query, db, {a}, options);
    EXPECT_NEAR(result.estimate, exact,
                3 * options.epsilon * std::max(exact, 0.01))
        << "x = " << a;
  }
}

TEST(Cor55Test, RejectsGeneralQueries) {
  UnreliableDatabase db = SmallDatabase();
  ApproxOptions options;
  EXPECT_FALSE(ReliabilityAbsoluteApprox(
                   MustParse("forall x . exists y . E(x, y)"), db, options)
                   .ok());
}

TEST(Cor55Test, ExistentialBooleanMatchesExactReliability) {
  UnreliableDatabase db = SmallDatabase();
  FormulaPtr query = MustParse("exists x . S(x)");
  double exact = ExactReliability(query, db)->reliability.ToDouble();
  ApproxOptions options;
  options.epsilon = 0.02;
  options.delta = 0.01;
  options.seed = 2718;
  ApproxResult result = *ReliabilityAbsoluteApprox(query, db, options);
  EXPECT_NEAR(result.estimate, exact, 3 * options.epsilon);
}

TEST(Cor55Test, UniversalBooleanMatchesExactReliability) {
  UnreliableDatabase db = SmallDatabase();
  FormulaPtr query = MustParse("forall x . S(x) -> (exists y . E(x, y))");
  // Universal? NNF: ∀x (!S(x) | ∃y E(x,y)) — contains ∃, not universal!
  // Use a genuinely universal query instead.
  query = MustParse("forall x . S(x) | !E(x, x)");
  double exact = ExactReliability(query, db)->reliability.ToDouble();
  ApproxOptions options;
  options.epsilon = 0.02;
  options.delta = 0.01;
  options.seed = 1414;
  ApproxResult result = *ReliabilityAbsoluteApprox(query, db, options);
  EXPECT_NEAR(result.estimate, exact, 3 * options.epsilon);
}

TEST(Cor55Test, UnaryQueryMatchesExactReliability) {
  UnreliableDatabase db = SmallDatabase();
  FormulaPtr query = MustParse("exists y . E(x, y)");
  double exact = ExactReliability(query, db)->reliability.ToDouble();
  ApproxOptions options;
  options.epsilon = 0.06;
  options.delta = 0.05;
  options.seed = 5;
  ApproxResult result = *ReliabilityAbsoluteApprox(query, db, options);
  EXPECT_NEAR(result.estimate, exact, 3 * options.epsilon);
}

TEST(PaddedTest, SampleBoundFormula) {
  // t = ceil(9/(2 ξ ε²) ln(1/δ)).
  EXPECT_EQ(PaddedSampleBound(0.25, 1.0, 1.0 / std::exp(1.0)), 18u);
}

TEST(PaddedTest, RejectsBadXi) {
  UnreliableDatabase db = SmallDatabase();
  ApproxOptions options;
  options.xi = 0.5;
  EXPECT_FALSE(
      PaddedReliabilityApprox(MustParse("S(#0)"), db, options).ok());
  options.xi = 0.0;
  EXPECT_FALSE(
      PaddedReliabilityApprox(MustParse("S(#0)"), db, options).ok());
}

TEST(PaddedTest, BooleanQueriesMatchExactReliability) {
  UnreliableDatabase db = SmallDatabase();
  for (const std::string text : {
           "exists x . S(x)",
           "forall x . S(x) | !E(x, x)",
           // General first-order (neither existential nor universal):
           "forall x . S(x) -> (exists y . E(x, y))",
       }) {
    FormulaPtr query = MustParse(text);
    double exact = ExactReliability(query, db)->reliability.ToDouble();
    ApproxOptions options;
    options.epsilon = 0.05;
    options.delta = 0.02;
    options.seed = 808;
    ApproxResult result = *PaddedReliabilityApprox(query, db, options);
    EXPECT_NEAR(result.estimate, exact, 3 * options.epsilon) << text;
  }
}

TEST(PaddedTest, UnaryGeneralQueryMatchesExactReliability) {
  UnreliableDatabase db = SmallDatabase();
  FormulaPtr query = MustParse("forall y . E(x, y) -> (exists z . E(y, z))");
  double exact = ExactReliability(query, db)->reliability.ToDouble();
  ApproxOptions options;
  options.epsilon = 0.15;
  options.delta = 0.1;
  options.seed = 99;
  options.fixed_samples = 40000;  // keep the per-tuple budget tractable
  ApproxResult result = *PaddedReliabilityApprox(query, db, options);
  EXPECT_NEAR(result.estimate, exact, 0.05);
}

TEST(PaddedTest, XiAblationAllValuesConverge) {
  UnreliableDatabase db = SmallDatabase();
  FormulaPtr query = MustParse("exists x . S(x)");
  double exact = ExactReliability(query, db)->reliability.ToDouble();
  for (double xi : {0.05, 0.15, 0.25, 0.35, 0.45}) {
    ApproxOptions options;
    options.xi = xi;
    options.epsilon = 0.2;
    options.delta = 0.1;
    options.seed = 4242;
    options.fixed_samples = 200000;
    ApproxResult result = *PaddedReliabilityApprox(query, db, options);
    EXPECT_NEAR(result.estimate, exact, 0.03) << "xi = " << xi;
  }
}

TEST(ApproxTest, DeterministicForFixedSeed) {
  UnreliableDatabase db = SmallDatabase();
  FormulaPtr query = MustParse("exists x . S(x)");
  ApproxOptions options;
  options.seed = 11;
  ApproxResult a = *ExistentialProbabilityFptras(query, db, {}, options);
  ApproxResult b = *ExistentialProbabilityFptras(query, db, {}, options);
  EXPECT_EQ(a.estimate, b.estimate);
  ApproxResult c = *PaddedReliabilityApprox(query, db, options);
  ApproxResult d = *PaddedReliabilityApprox(query, db, options);
  EXPECT_EQ(c.estimate, d.estimate);
}

}  // namespace
}  // namespace qrel
