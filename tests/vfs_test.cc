// util/vfs: the injectable filesystem. Covers the POSIX semantics the
// durability layer relies on (typed errors, short-write contract,
// fd-released-on-close-failure), every vfs.* error-injection site, and —
// via WriteSnapshotFile — the unlink-on-failure audit: no early return in
// the atomic-rename protocol may leak a temp file or a descriptor.

#include "qrel/util/vfs.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"

namespace qrel {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    dir_ = ::testing::TempDir() + "/vfs_test_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0755);
  }

  void TearDown() override {
    FaultInjector::Instance().Reset();
    StatusOr<std::vector<std::string>> names = ProcessVfs().ListDir(dir_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        (void)RawPosixVfs().Unlink(dir_ + "/" + name);
      }
    }
    ::rmdir(dir_.c_str());
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::vector<std::string> Listing() const {
    StatusOr<std::vector<std::string>> names = ProcessVfs().ListDir(dir_);
    EXPECT_TRUE(names.ok()) << names.status().ToString();
    std::vector<std::string> sorted = names.ok() ? *names
                                                 : std::vector<std::string>{};
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

  std::string dir_;
};

// Writes `bytes` through the full vfs write protocol, looping on short
// writes the way every real caller must.
Status WriteWholeFile(Vfs& vfs, const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  QREL_ASSIGN_OR_RETURN(int fd, vfs.OpenWrite(path));
  size_t offset = 0;
  while (offset < bytes.size()) {
    StatusOr<size_t> n =
        vfs.Write(fd, bytes.data() + offset, bytes.size() - offset);
    if (!n.ok()) {
      (void)vfs.Close(fd);
      return n.status();
    }
    offset += *n;
  }
  QREL_RETURN_IF_ERROR(vfs.Fsync(fd));
  return vfs.Close(fd);
}

TEST_F(VfsTest, WriteReadRoundTrip) {
  std::vector<uint8_t> bytes = {1, 2, 3, 4, 5};
  ASSERT_TRUE(WriteWholeFile(ProcessVfs(), Path("a.bin"), bytes).ok());
  StatusOr<std::vector<uint8_t>> read =
      ProcessVfs().ReadFileBytes(Path("a.bin"), 1024);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, bytes);
}

TEST_F(VfsTest, MissingFileReadsAsNotFound) {
  StatusOr<std::vector<uint8_t>> read =
      ProcessVfs().ReadFileBytes(Path("missing.bin"), 1024);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(VfsTest, OversizedFileReadsAsDataLoss) {
  std::vector<uint8_t> bytes(64, 0xab);
  ASSERT_TRUE(WriteWholeFile(ProcessVfs(), Path("big.bin"), bytes).ok());
  StatusOr<std::vector<uint8_t>> read =
      ProcessVfs().ReadFileBytes(Path("big.bin"), 63);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST_F(VfsTest, UnlinkMissingIsNotFound) {
  Status status = ProcessVfs().Unlink(Path("missing.bin"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(VfsTest, ListDirOmitsDotEntriesAndSeesFiles) {
  ASSERT_TRUE(WriteWholeFile(ProcessVfs(), Path("one"), {1}).ok());
  ASSERT_TRUE(WriteWholeFile(ProcessVfs(), Path("two"), {2}).ok());
  EXPECT_EQ(Listing(), (std::vector<std::string>{"one", "two"}));
}

TEST_F(VfsTest, ListMissingDirIsNotFound) {
  StatusOr<std::vector<std::string>> names =
      ProcessVfs().ListDir(Path("no_such_subdir"));
  ASSERT_FALSE(names.ok());
  EXPECT_EQ(names.status().code(), StatusCode::kNotFound);
}

// --- Error-injection sites -------------------------------------------------

TEST_F(VfsTest, ArmedOpenWriteFailsWithChosenCode) {
  // kResourceExhausted at arm time simulates ENOSPC: the code chosen by
  // the drill comes back, not a hardwired one.
  FaultInjector::Instance().Arm("vfs.open_write", 1,
                                StatusCode::kResourceExhausted);
  StatusOr<int> fd = ProcessVfs().OpenWrite(Path("full.bin"));
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kResourceExhausted);
  // One-shot: the retry succeeds and nothing was created by the fault.
  StatusOr<int> retry = ProcessVfs().OpenWrite(Path("full.bin"));
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(ProcessVfs().Close(*retry).ok());
}

TEST_F(VfsTest, ArmedShortWriteHalvesOneTransferAndCallersAbsorbIt) {
  FaultInjector::Instance().Arm("vfs.write.short", 1);
  std::vector<uint8_t> bytes(100, 0x5a);
  ASSERT_TRUE(WriteWholeFile(ProcessVfs(), Path("short.bin"), bytes).ok());
  StatusOr<std::vector<uint8_t>> read =
      ProcessVfs().ReadFileBytes(Path("short.bin"), 1024);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, bytes) << "short write dropped bytes";
  EXPECT_EQ(FaultInjector::Instance().TriggeredCount("vfs.write.short"), 1u);
}

TEST_F(VfsTest, InjectedCloseFailureStillReleasesTheDescriptor) {
  StatusOr<int> fd = ProcessVfs().OpenWrite(Path("close.bin"));
  ASSERT_TRUE(fd.ok());
  FaultInjector::Instance().Arm("vfs.close", 1);
  Status closed = ProcessVfs().Close(*fd);
  ASSERT_FALSE(closed.ok());
  // The fd was really released despite the injected error: closing it
  // again must fail at the OS level (EBADF), not double-close a live fd.
  EXPECT_FALSE(RawPosixVfs().Close(*fd).ok());
}

TEST_F(VfsTest, ArmedRenameFailsAndLeavesSourceInPlace) {
  ASSERT_TRUE(WriteWholeFile(ProcessVfs(), Path("src"), {7}).ok());
  FaultInjector::Instance().Arm("vfs.rename", 1, StatusCode::kInternal);
  Status renamed = ProcessVfs().Rename(Path("src"), Path("dst"));
  ASSERT_FALSE(renamed.ok());
  EXPECT_EQ(renamed.code(), StatusCode::kInternal);
  EXPECT_EQ(Listing(), (std::vector<std::string>{"src"}));
}

TEST_F(VfsTest, ScopedOverrideRoutesProcessVfs) {
  // A counting pass-through proves ProcessVfs() honors the override and
  // restores the default when the scope ends.
  class CountingVfs : public FaultInjectingVfs {
   public:
    CountingVfs() : FaultInjectingVfs(&RawPosixVfs()) {}
    StatusOr<std::vector<std::string>> ListDir(
        const std::string& dir) override {
      ++lists;
      return FaultInjectingVfs::ListDir(dir);
    }
    int lists = 0;
  };
  CountingVfs counting;
  {
    ScopedVfsOverride scoped(&counting);
    ASSERT_TRUE(ProcessVfs().ListDir(dir_).ok());
    EXPECT_EQ(counting.lists, 1);
  }
  ASSERT_TRUE(ProcessVfs().ListDir(dir_).ok());
  EXPECT_EQ(counting.lists, 1) << "override leaked past its scope";
}

// --- WriteSnapshotFile early-return audit ----------------------------------
//
// For every injectable failure point in the atomic-rename protocol, a
// failed WriteSnapshotFile must (a) return a typed error, (b) leave no
// temp file behind, and (c) leave a previous snapshot at the target path
// untouched. One site is armed per run — the cleanup path itself goes
// through the vfs, and faulting two sites at once would fault the
// cleanup too.

SnapshotData SampleSnapshot() {
  SnapshotWriter writer;
  writer.U64(42);
  SnapshotData data;
  data.kind = "vfs.test.v1";
  data.fingerprint = 7;
  data.work_spent = 1;
  data.payload = writer.TakeBytes();
  return data;
}

TEST_F(VfsTest, EveryWriteSiteFailureLeavesNoTempAndKeepsPreviousSnapshot) {
  const std::string path = Path("state.snap");
  SnapshotData previous = SampleSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(path, previous).ok());

  SnapshotData replacement = SampleSnapshot();
  replacement.work_spent = 999;

  for (const char* site : {"vfs.open_write", "vfs.write", "vfs.fsync",
                           "vfs.close", "vfs.rename"}) {
    SCOPED_TRACE(site);
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Arm(site, 1, StatusCode::kResourceExhausted);
    Status failed = WriteSnapshotFile(path, replacement);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);
    FaultInjector::Instance().Reset();

    EXPECT_EQ(Listing(), (std::vector<std::string>{"state.snap"}))
        << "temp file leaked after failure at " << site;
    StatusOr<SnapshotData> loaded = ReadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->work_spent, previous.work_spent)
        << "previous snapshot damaged by failure at " << site;
  }
}

TEST_F(VfsTest, FsyncDirFailureAfterRenameKeepsTheNewSnapshot) {
  // The parent-dir fsync happens after the rename: its failure reports an
  // error (durability not guaranteed) but the rename already happened, so
  // the new content is what a reader sees and no temp remains.
  const std::string path = Path("state.snap");
  ASSERT_TRUE(WriteSnapshotFile(path, SampleSnapshot()).ok());
  SnapshotData replacement = SampleSnapshot();
  replacement.work_spent = 999;
  FaultInjector::Instance().Arm("vfs.fsync_dir", 1);
  Status failed = WriteSnapshotFile(path, replacement);
  ASSERT_FALSE(failed.ok());
  FaultInjector::Instance().Reset();
  EXPECT_EQ(Listing(), (std::vector<std::string>{"state.snap"}));
  StatusOr<SnapshotData> loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->work_spent, 999u);
}

TEST_F(VfsTest, ShortWriteDuringSnapshotWriteIsAbsorbed) {
  const std::string path = Path("state.snap");
  FaultInjector::Instance().Arm("vfs.write.short", 1);
  ASSERT_TRUE(WriteSnapshotFile(path, SampleSnapshot()).ok());
  EXPECT_EQ(FaultInjector::Instance().TriggeredCount("vfs.write.short"), 1u);
  StatusOr<SnapshotData> loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

}  // namespace
}  // namespace qrel
