#include "qrel/logic/safe_plan.h"

#include <string>

#include <gtest/gtest.h>

#include "qrel/logic/parser.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

// Shorthand: the rendered plan for a query asserted to be safe.
std::string PlanFor(const std::string& text) {
  SafePlanAnalysis analysis = AnalyzeSafePlan(MustParse(text));
  EXPECT_TRUE(analysis.applicable) << text;
  EXPECT_TRUE(analysis.safe) << text;
  if (!analysis.safe || analysis.plan == nullptr) {
    return "<unsafe>";
  }
  return analysis.plan->ToString();
}

// Shorthand: the blocking check id for a query asserted to be unsafe.
std::string BlockerFor(const std::string& text) {
  SafePlanAnalysis analysis = AnalyzeSafePlan(MustParse(text));
  EXPECT_TRUE(analysis.applicable) << text;
  EXPECT_FALSE(analysis.safe) << text;
  if (analysis.diagnostics.empty()) {
    return "<none>";
  }
  return analysis.diagnostics.front().check_id;
}

TEST(SafePlanTest, SingleAtomProjectsItsVariable) {
  EXPECT_EQ(PlanFor("exists x . S(x)"), "proj x . S(x)");
}

TEST(SafePlanTest, HierarchicalJoinProjectsRootThenSplits) {
  // y is in every atom (root); after projecting y, S(y) and E(x, y) share
  // no quantified variable and split into an independent join.
  EXPECT_EQ(PlanFor("exists x . exists y . E(x, y) & S(y)"),
            "proj y . (proj x . E(x, y) * S(y))");
}

TEST(SafePlanTest, FreeVariablesStayAsPlanParameters) {
  EXPECT_EQ(PlanFor("exists x . S(x) & E(x, y)"),
            "proj x . (S(x) * E(x, y))");
}

TEST(SafePlanTest, DisjointComponentsJoinWithoutARootVariable) {
  // No variable is in both atoms, but they also share no quantified
  // variable: the independent-join rule applies first.
  EXPECT_EQ(PlanFor("exists x . exists y . S(x) & T(y)"),
            "(proj x . S(x) * proj y . T(y))");
}

TEST(SafePlanTest, QuantifierPrefixOrderDoesNotMatter) {
  EXPECT_EQ(PlanFor("exists y . exists x . E(x, y) & S(y)"),
            PlanFor("exists x . exists y . E(x, y) & S(y)"));
}

TEST(SafePlanTest, DuplicateAtomsAreMerged) {
  EXPECT_EQ(PlanFor("exists x . S(x) & S(x)"), "proj x . S(x)");
}

TEST(SafePlanTest, UnusedBindersAreDropped) {
  // ∃y over a nonempty universe is a no-op when y occurs in no atom.
  EXPECT_EQ(PlanFor("exists x . exists y . S(x)"), "proj x . S(x)");
}

TEST(SafePlanTest, ShadowedBindersAreHandled) {
  EXPECT_EQ(PlanFor("exists x . exists x . S(x)"), "proj x . S(x)");
}

TEST(SafePlanTest, BoundEqualityIsSubstitutedAway) {
  // ∃x (x = #2 ∧ S(x)) ≡ S(#2): the equality binds x to the constant.
  EXPECT_EQ(PlanFor("exists x . x = #2 & S(x)"), "S(#2)");
  // ∃x (x = y ∧ E(x, y)) ≡ E(y, y) with y free.
  EXPECT_EQ(PlanFor("exists x . x = y & E(x, y)"), "E(y, y)");
}

TEST(SafePlanTest, ResidualEqualityBecomesDeterministicLeaf) {
  // y = z has no quantified variable: it survives as a 0/1 leaf joined
  // with the substituted body.
  EXPECT_EQ(PlanFor("exists x . x = y & y = z & S(x)"),
            "(y = z * S(y))");
}

TEST(SafePlanTest, ContradictoryConstantsYieldAZeroLeaf) {
  // #1 = #2 is statically false; the plan is the deterministic 0 leaf.
  SafePlanAnalysis analysis =
      AnalyzeSafePlan(MustParse("exists x . x = #1 & x = #2 & S(x)"));
  EXPECT_TRUE(analysis.safe);
  ASSERT_NE(analysis.plan, nullptr);
  EXPECT_EQ(analysis.plan->kind, SafePlanKind::kEquality);
}

TEST(SafePlanTest, SafeQueryEmitsTheSafePlanNote) {
  SafePlanAnalysis analysis =
      AnalyzeSafePlan(MustParse("exists x . S(x) & T(x)"));
  EXPECT_TRUE(analysis.applicable);
  EXPECT_TRUE(analysis.safe);
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics[0].check_id, "safe-plan");
  EXPECT_EQ(analysis.diagnostics[0].severity, DiagnosticSeverity::kNote);
  EXPECT_NE(analysis.diagnostics[0].message.find("proj x . (S(x) * T(x))"),
            std::string::npos);
}

TEST(SafePlanTest, SelfJoinIsRejectedWithBothAtomsNamed) {
  const std::string query = "exists x . exists y . E(x, y) & E(y, x)";
  EXPECT_EQ(BlockerFor(query), "unsafe-self-join");
  SafePlanAnalysis analysis = AnalyzeSafePlan(MustParse(query));
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  const Diagnostic& diagnostic = analysis.diagnostics[0];
  EXPECT_NE(diagnostic.message.find("E(x, y)"), std::string::npos);
  EXPECT_NE(diagnostic.message.find("E(y, x)"), std::string::npos);
  // The range covers both atoms, which the parser locates inside the
  // query text.
  ASSERT_TRUE(diagnostic.range.valid());
  EXPECT_GE(diagnostic.range.begin, query.find("E(x, y)"));
  EXPECT_LE(diagnostic.range.end, query.size());
}

TEST(SafePlanTest, SelfJoinWithConstantsIsStillRejected) {
  // Conservative: E(x, #0) and E(#1, x) touch disjoint ground atoms only
  // for some instantiations, and the checker does not try to prove it.
  EXPECT_EQ(BlockerFor("exists x . E(x, #0) & E(#1, x)"),
            "unsafe-self-join");
}

TEST(SafePlanTest, NonHierarchicalQueryHasNoRootVariable) {
  SafePlanAnalysis analysis = AnalyzeSafePlan(
      MustParse("exists x . exists y . S(x) & E(x, y) & T(y)"));
  EXPECT_TRUE(analysis.applicable);
  EXPECT_FALSE(analysis.safe);
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics[0].check_id, "unsafe-no-root-variable");
  // The witness names a variable missing from a concrete atom.
  EXPECT_NE(analysis.diagnostics[0].message.find("does not occur in"),
            std::string::npos);
}

TEST(SafePlanTest, QuantifierFreeQueriesAreNotApplicable) {
  // Prop 3.1 already covers these exactly; the safe-plan rung stays out.
  SafePlanAnalysis analysis = AnalyzeSafePlan(MustParse("S(x) & E(x, y)"));
  EXPECT_FALSE(analysis.applicable);
  EXPECT_FALSE(analysis.safe);
  EXPECT_TRUE(analysis.diagnostics.empty());
}

TEST(SafePlanTest, NonConjunctiveQueriesAreNotApplicable) {
  EXPECT_FALSE(AnalyzeSafePlan(MustParse("exists x . S(x) | T(x)")).applicable);
  EXPECT_FALSE(AnalyzeSafePlan(MustParse("forall x . S(x)")).applicable);
  EXPECT_FALSE(AnalyzeSafePlan(MustParse("exists x . !S(x)")).applicable);
  EXPECT_FALSE(
      AnalyzeSafePlan(MustParse("exists x . S(x) & (T(x) | E(x, x))"))
          .applicable);
}

TEST(SafePlanTest, HasSafePlanMatchesTheAnalysis) {
  EXPECT_TRUE(HasSafePlan(MustParse("exists x . S(x) & T(x)")));
  EXPECT_FALSE(HasSafePlan(MustParse("exists x . exists y . E(x, y) & E(y, x)")));
  EXPECT_FALSE(HasSafePlan(MustParse("S(x)")));
}

TEST(SafePlanTest, DeepHierarchyBuildsNestedProjects) {
  // x is in all three atoms; after projecting x, y is in both remaining
  // E/F atoms... but E and F are different relations, so the split is by
  // shared quantified variables: E(x, y) and F(x, y) share y.
  EXPECT_EQ(PlanFor("exists x . exists y . S(x) & E(x, y) & F(x, y)"),
            "proj x . (S(x) * proj y . (E(x, y) * F(x, y)))");
}

}  // namespace
}  // namespace qrel
