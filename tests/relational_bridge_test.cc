#include "qrel/metafinite/relational_bridge.h"

#include <memory>

#include <gtest/gtest.h>

#include "qrel/core/reliability.h"
#include "qrel/logic/eval.h"
#include "qrel/logic/parser.h"
#include "qrel/metafinite/reliability.h"
#include "qrel/util/rng.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

UnreliableDatabase SmallDatabase() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("S", 1);
  Structure observed(vocabulary, 3);
  observed.AddFact(0, {0, 1});
  observed.AddFact(0, {1, 2});
  observed.AddFact(1, {0});
  UnreliableDatabase db(std::move(observed));
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 3));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {2}}, Rational(1));  // certain flip
  return db;
}

TEST(RelationalBridgeTest, EncodingShape) {
  UnreliableDatabase db = SmallDatabase();
  UnreliableFunctionalDatabase encoded = *EncodeRelationalDatabase(db);
  const FunctionalVocabulary& vocabulary = encoded.vocabulary();
  int chi_e = *vocabulary.FindFunction("chi_E");
  int chi_s = *vocabulary.FindFunction("chi_S");
  int id = *vocabulary.FindFunction("id");

  // χ values reflect the observed database.
  EXPECT_EQ(encoded.observed().Value(chi_e, {0, 1}), Rational(1));
  EXPECT_EQ(encoded.observed().Value(chi_e, {1, 0}), Rational(0));
  EXPECT_EQ(encoded.observed().Value(chi_s, {0}), Rational(1));
  // id is the identity.
  for (Element a = 0; a < 3; ++a) {
    EXPECT_EQ(encoded.observed().Value(id, {a}), Rational(a));
  }
  // One distribution per error-model entry.
  EXPECT_EQ(encoded.uncertain_entry_count(), 3);
}

TEST(RelationalBridgeTest, WorldDistributionMatches) {
  // Pr[χ_R(ā) = 1] must equal ν(R ā) for every entry.
  UnreliableDatabase db = SmallDatabase();
  UnreliableFunctionalDatabase encoded = *EncodeRelationalDatabase(db);
  for (int entry = 0; entry < db.model().entry_count(); ++entry) {
    const GroundAtom& atom = db.model().atom(entry);
    int chi = *encoded.vocabulary().FindFunction(
        ChiFunctionName(db.vocabulary().relation(atom.relation).name));
    std::optional<int> encoded_entry =
        encoded.FindUncertainEntry(FunctionEntry{chi, atom.args});
    ASSERT_TRUE(encoded_entry.has_value());
    Rational prob_one;
    for (const ValueDistribution::Outcome& outcome :
         encoded.distribution(*encoded_entry).outcomes) {
      if (outcome.value.IsOne()) {
        prob_one += outcome.probability;
      }
    }
    EXPECT_EQ(prob_one, db.EntryNuTrue(entry));
  }
}

TEST(RelationalBridgeTest, TranslationShapes) {
  MTermPtr term = *TranslateFirstOrder(MustParse("exists x . S(x) & x != #0"));
  EXPECT_EQ(term->ToString(),
            "max x . ((chi_S(x) && !((id(x) == 0))))");
  term = *TranslateFirstOrder(MustParse("forall x . S(x) -> E(x, x)"));
  EXPECT_EQ(term->ToString(),
            "min x . ((!(chi_S(x)) || chi_E(x, x)))");
}

// The embedding preserves evaluation: t(ψ)(ā) = 1 ⟺ 𝔄 ⊨ ψ(ā).
TEST(RelationalBridgeTest, TranslationPreservesEvaluation) {
  UnreliableDatabase db = SmallDatabase();
  UnreliableFunctionalDatabase encoded = *EncodeRelationalDatabase(db);
  for (const std::string text : {
           "S(x)",
           "E(x, y) & !S(y)",
           "x = y | E(x, y)",
           "exists z . E(x, z) & E(z, y)",
           "forall z . E(x, z) -> S(z)",
           "(S(x) <-> S(y)) & x != y",
       }) {
    FormulaPtr formula = MustParse(text);
    MTermPtr term = *TranslateFirstOrder(formula);
    CompiledQuery compiled =
        std::move(CompiledQuery::Compile(formula, db.vocabulary())).value();
    ASSERT_EQ(term->FreeVariables(), compiled.free_variables()) << text;
    Tuple assignment(static_cast<size_t>(compiled.arity()), 0);
    do {
      bool relational = compiled.Eval(db.observed(), assignment);
      Rational functional =
          EvalTerm(term, encoded.observed(), assignment);
      EXPECT_EQ(relational, functional.IsOne()) << text;
      EXPECT_TRUE(functional.IsZero() || functional.IsOne()) << text;
    } while (AdvanceTuple(&assignment, db.universe_size()));
  }
}

// The embedding preserves reliability: the Section 6 claim, exactly.
TEST(RelationalBridgeTest, TranslationPreservesReliability) {
  UnreliableDatabase db = SmallDatabase();
  UnreliableFunctionalDatabase encoded = *EncodeRelationalDatabase(db);
  for (const std::string text : {
           "S(x)",
           "E(x, y) & S(x)",
           "exists x . S(x)",
           "exists x y . E(x, y) & S(y)",
           "forall x . S(x) -> (exists y . E(x, y))",
       }) {
    FormulaPtr formula = MustParse(text);
    MTermPtr term = *TranslateFirstOrder(formula);
    ReliabilityReport relational = *ExactReliability(formula, db);
    FunctionalReliabilityReport functional =
        *ExactFunctionalReliability(term, encoded);
    EXPECT_EQ(relational.expected_error, functional.expected_error) << text;
    EXPECT_EQ(relational.reliability, functional.reliability) << text;
  }
}

// Quantifier-free queries stay quantifier-free under translation, so the
// two polynomial algorithms (Prop 3.1 and Thm 6.2 (i)) must agree too.
TEST(RelationalBridgeTest, QuantifierFreeFastPathsAgree) {
  Rng rng(20260707);
  for (int round = 0; round < 5; ++round) {
    UnreliableDatabase db = SmallDatabase();
    // Extra random noise.
    for (Element i = 0; i < 3; ++i) {
      for (Element j = 0; j < 3; ++j) {
        if (rng.NextBernoulli(0.3)) {
          db.SetErrorProbability(
              GroundAtom{0, {i, j}},
              Rational(1 + static_cast<int64_t>(rng.NextBelow(6)), 7));
        }
      }
    }
    UnreliableFunctionalDatabase encoded = *EncodeRelationalDatabase(db);
    FormulaPtr formula = MustParse("E(x, y) & (S(x) | !S(y)) | x = y");
    MTermPtr term = *TranslateFirstOrder(formula);
    EXPECT_TRUE(term->IsQuantifierFree());
    ReliabilityReport relational = *QuantifierFreeReliability(formula, db);
    FunctionalReliabilityReport functional =
        *QuantifierFreeFunctionalReliability(term, encoded);
    EXPECT_EQ(relational.expected_error, functional.expected_error);
  }
}

}  // namespace
}  // namespace qrel
