// In-process QrelServer tests: admission control, overload shedding,
// pressure degradation, result-cache behavior, single-flight dedup,
// drain-under-load with checkpoint-abort/resume, and bit-identical
// answers under client concurrency. Everything drives Handle(), the same
// code path the TCP layer uses, so no sockets or timing-sensitive I/O.

#include "qrel/net/server.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/net/protocol.h"
#include "qrel/prob/text_format.h"

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
absent E 2 0 err=1/5
)";

UnreliableDatabase TestDatabase() {
  StatusOr<UnreliableDatabase> database = ParseUdb(kUdbText);
  EXPECT_TRUE(database.ok()) << database.status().ToString();
  return std::move(database).value();
}

ReliabilityEngine TestEngine() { return ReliabilityEngine(TestDatabase()); }

Request QueryRequest(const std::string& query) {
  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = query;
  return request;
}

// A request whose execution is slow enough (hundreds of ms) to observe
// in-flight: a forced-sampling run with a large fixed sample count.
Request SlowRequest(const std::string& query, uint64_t samples) {
  Request request = QueryRequest(query);
  request.options.force_approximate = true;
  request.options.fixed_samples = samples;
  return request;
}

// Options generous enough that slow sampling requests never budget-trip.
ServerOptions GenerousOptions() {
  ServerOptions options;
  options.workers = 1;
  options.default_max_work = uint64_t{1} << 27;
  options.max_request_work = uint64_t{1} << 27;
  options.work_quota = uint64_t{1} << 30;
  return options;
}

void WaitFor(const std::function<bool()>& predicate, int timeout_ms = 30000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "condition not reached in time";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(ServerTest, AnswersExactQueryWithFullReport) {
  QrelServer server(TestEngine(), ServerOptions{});
  Response response = server.Handle(QueryRequest("exists x y . E(x,y) & S(y)"));
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.Field("exact").value_or(""), "1");
  // Observed answer is false; the true database agrees unless E(0,1)&S(1)
  // both hold or the absent E(2,0) is really present:
  // (1 - 3/4 * 1/3) * (1 - 1/5) = 3/5.
  EXPECT_EQ(response.Field("exact_value").value_or(""), "3/5");
  EXPECT_EQ(response.Field("pressure").value_or(""), "0");
  EXPECT_TRUE(response.Field("method")
                  .value_or("")
                  .rfind("safe-plan extensional", 0) == 0)
      << response.Field("method").value_or("");
}

TEST(ServerTest, HealthStatsAndDrainVerbs) {
  QrelServer server(TestEngine(), ServerOptions{});
  Request health;
  health.verb = RequestVerb::kHealth;
  Response response = server.Handle(health);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.Field("state").value_or(""), "serving");

  (void)server.Handle(QueryRequest("S(x)"));
  Request stats;
  stats.verb = RequestVerb::kStats;
  response = server.Handle(stats);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.Field("queries").value_or(""), "1");

  Request drain;
  drain.verb = RequestVerb::kDrain;
  response = server.Handle(drain);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.Field("state").value_or(""), "draining");
  EXPECT_TRUE(server.draining());

  response = server.Handle(health);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.Field("state").value_or(""), "draining");
}

TEST(ServerTest, InvalidQueryIsRejectedBeforeTheQueue) {
  QrelServer server(TestEngine(), ServerOptions{});
  Response response = server.Handle(QueryRequest("Nope(x)"));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.rejected_invalid, 1u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.completed_ok + stats.completed_error, 0u);
}

TEST(ServerTest, HandlePayloadTurnsParseFailuresIntoTypedResponses) {
  QrelServer server(TestEngine(), ServerOptions{});
  std::string payload = server.HandlePayload("FROBNICATE\n");
  StatusOr<Response> response = ParseResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
}

TEST(ServerTest, CostCeilingRejectsBeforeAnyWork) {
  ServerOptions options;
  options.max_admission_cost = 4.0;  // the 5-atom db has 32 worlds
  QrelServer server(TestEngine(), options);
  Response response =
      server.Handle(QueryRequest("exists x y . E(x,y) & S(y)"));
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.rejected_cost, 1u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.completed_ok + stats.completed_error, 0u);
}

TEST(ServerTest, SafeQueryIsAdmittedOnItsPolynomialCost) {
  // 4 uncertain atoms → 16 worlds, over the ceiling; but the query is
  // safe, so admission keys on the extensional grounding cost 3^2 = 9 and
  // the request runs (exactly) instead of being shed.
  ServerOptions options;
  options.max_admission_cost = 10.0;
  QrelServer server(TestEngine(), options);
  Response response =
      server.Handle(QueryRequest("exists x y . E(x,y) & S(y)"));
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.Field("exact").value_or(""), "1");
  EXPECT_EQ(response.Field("exact_value").value_or(""), "3/5");
  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.rejected_cost, 0u);

  // An unsafe conjunctive sibling of the same shape still prices at its
  // 16-world enumeration and is shed by the same ceiling.
  response = server.Handle(QueryRequest("exists x y . E(x,y) & S(y) & S(x)"));
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
}

TEST(ServerTest, ExplainReportsAdmissionWithoutExecuting) {
  ServerOptions options;
  options.max_admission_cost = 4.0;
  QrelServer server(TestEngine(), options);

  Request explain;
  explain.verb = RequestVerb::kExplain;
  explain.query = "exists x y . E(x,y) & S(y)";
  Response response = server.Handle(explain);
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.Field("admitted").value_or(""), "0");
  EXPECT_FALSE(response.Field("reject_reason").value_or("").empty());
  EXPECT_TRUE(response.Field("planned_method")
                  .value_or("")
                  .rfind("safe-plan extensional", 0) == 0);
  EXPECT_EQ(response.Field("safe").value_or(""), "1");
  EXPECT_FALSE(response.Field("safe_plan").value_or("").empty());

  // Statically-false queries cost nothing and are always admitted.
  explain.query = "S(x) & !S(x)";
  response = server.Handle(explain);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.Field("admitted").value_or(""), "1");

  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.explains, 2u);
  EXPECT_EQ(stats.completed_ok + stats.completed_error, 0u);
}

TEST(ServerTest, CacheReplaysIdenticalQueriesAndKeysOnOptions) {
  QrelServer server(TestEngine(), ServerOptions{});
  Request request = QueryRequest("exists x y . E(x,y) & S(y)");

  Response first = server.Handle(request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.Field("cache").value_or(""), "miss");

  Response second = server.Handle(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.Field("cache").value_or(""), "hit");
  EXPECT_EQ(second.Field("reliability"), first.Field("reliability"));

  // A different seed is a different determinism input: no replay.
  request.options.seed = 99;
  Response third = server.Handle(request);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.Field("cache").value_or(""), "miss");

  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(ServerTest, EnvelopeDoesNotChangeTheStoreKey) {
  QrelServer server(TestEngine(), ServerOptions{});
  Request request = QueryRequest("exists x y . E(x,y) & S(y)");
  ASSERT_TRUE(server.Handle(request).ok());

  // Same determinism inputs, different envelope: the full-fidelity result
  // is envelope-independent, so it replays.
  request.options.timeout_ms = 60000;
  Response replay = server.Handle(request);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.Field("cache").value_or(""), "hit");
}

TEST(ServerTest, SingleFlightDeduplicatesAStampede) {
  ServerOptions options = GenerousOptions();
  QrelServer server(TestEngine(), options);
  Request slow = SlowRequest("exists x y . E(x,y) & S(y)", 300000);

  constexpr int kClients = 6;
  std::vector<Response> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [&server, &slow, &responses, i] { responses[i] = server.Handle(slow); });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].status.ToString();
    EXPECT_EQ(responses[i].Field("reliability"),
              responses[0].Field("reliability"));
    EXPECT_EQ(responses[i].Field("samples"), responses[0].Field("samples"));
  }
  ServerStatsSnapshot stats = server.stats_snapshot();
  // One leader computed; everyone else shared its flight or hit the store
  // (a client that arrived after the flight landed).
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_shared,
            static_cast<uint64_t>(kClients - 1));
  EXPECT_EQ(stats.completed_ok, 1u);
}

TEST(ServerTest, QueueFullShedsWithTypedUnavailableAndRetryHint) {
  ServerOptions options = GenerousOptions();
  options.queue_capacity = 2;
  QrelServer server(TestEngine(), options);

  // Distinct slow queries (different seeds) so none of them share a
  // flight: one runs, two queue, the next must shed.
  auto slow = [](uint64_t seed) {
    Request request = SlowRequest("exists x y . E(x,y) & S(y)", 3000000);
    request.options.seed = seed;
    return request;
  };
  // Stagger the clients so none of them races another into the queue:
  // the first must be running before the two queued ones are submitted.
  std::vector<std::thread> clients;
  std::vector<Response> responses(3);
  auto submit = [&clients, &server, &slow, &responses](int i) {
    clients.emplace_back([&server, &slow, &responses, i] {
      responses[i] = server.Handle(slow(static_cast<uint64_t>(i) + 1));
    });
  };
  submit(0);
  WaitFor([&server] { return server.inflight() == 1; });
  submit(1);
  WaitFor([&server] { return server.queue_depth() == 1; });
  submit(2);
  WaitFor([&server] {
    return server.inflight() == 1 && server.queue_depth() == 2;
  });

  Response shed = server.Handle(slow(99));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(shed.retry_after_ms.has_value());
  EXPECT_GT(*shed.retry_after_ms, 0u);

  for (std::thread& t : clients) {
    t.join();
  }
  for (const Response& response : responses) {
    EXPECT_TRUE(response.ok()) << response.status.ToString();
  }
  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(stats.completed_ok, 3u);
}

TEST(ServerTest, WorkQuotaShedsWhenSaturated) {
  ServerOptions options = GenerousOptions();
  options.queue_capacity = 16;
  options.default_max_work = uint64_t{1} << 22;
  options.max_request_work = uint64_t{1} << 22;
  // Room for exactly one default-budget request.
  options.work_quota = uint64_t{1} << 22;
  QrelServer server(TestEngine(), options);

  Request slow = SlowRequest("exists x y . E(x,y) & S(y)", 3000000);
  std::thread client([&server, &slow] { (void)server.Handle(slow); });
  WaitFor([&server] { return server.inflight() == 1; });

  Request other = SlowRequest("exists x y . E(x,y) & S(y)", 3000000);
  other.options.seed = 2;
  Response shed = server.Handle(other);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status.message().find("quota"), std::string::npos);

  client.join();
  EXPECT_EQ(server.stats_snapshot().shed_quota, 1u);
}

TEST(ServerTest, PressureDegradesInsteadOfQueueingBlindly) {
  ServerOptions options = GenerousOptions();
  options.pressure_watermark = 0;  // every dequeue counts as pressured
  options.pressure_fixed_samples = 64;
  QrelServer server(TestEngine(), options);

  // Force the sampling rung so degradation has something to coarsen.
  Request request = QueryRequest("exists x y . E(x,y) & S(y)");
  request.options.force_approximate = true;
  Response response = server.Handle(request);
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.Field("pressure").value_or(""), "1");
  EXPECT_EQ(std::atoll(response.Field("samples").value_or("0").c_str()), 64);
  // The response reports the coarsened targets actually delivered.
  EXPECT_DOUBLE_EQ(std::atof(response.Field("epsilon").value_or("0").c_str()),
                   0.1);
  EXPECT_DOUBLE_EQ(std::atof(response.Field("delta").value_or("0").c_str()),
                   0.1);

  // Pressured answers are envelope-dependent: never replayed.
  Response again = server.Handle(request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.Field("cache").value_or(""), "miss");
  EXPECT_GE(server.stats_snapshot().pressure_degraded, 2u);
}

TEST(ServerTest, DrainShedsNewWorkAndCancelsStragglers) {
  ServerOptions options = GenerousOptions();
  options.drain_grace_ms = 20;
  QrelServer server(TestEngine(), options);

  Request slow = SlowRequest("exists x y . E(x,y) & S(y)", 50000000);
  slow.options.max_work = uint64_t{1} << 27;
  Response slow_response;
  std::thread client(
      [&server, &slow, &slow_response] { slow_response = server.Handle(slow); });
  WaitFor([&server] { return server.inflight() == 1; });

  server.BeginDrain();
  Response shed = server.Handle(QueryRequest("S(x)"));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(shed.retry_after_ms.has_value());

  server.Drain();
  client.join();
  // The straggler outlived the grace period and was cancelled
  // cooperatively: a typed CANCELLED, not a hang and not a torn answer.
  EXPECT_EQ(slow_response.status.code(), StatusCode::kCancelled);
  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_GE(stats.drain_cancelled, 1u);
  EXPECT_EQ(stats.shed_draining, 1u);
  EXPECT_EQ(server.inflight(), 0u);
}

// The drain → checkpoint-abort → restart → resume loop, end to end: a
// drained server flushes the cancelled request's final checkpoint, and a
// fresh server answering the identical request resumes from it and
// produces the same answer an uninterrupted server produces.
TEST(ServerTest, DrainCheckpointAbortsAndAFreshServerResumes) {
  std::string dir = ::testing::TempDir() + "qrel_server_ckpt";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  ServerOptions options = GenerousOptions();
  options.checkpoint_dir = dir;
  options.checkpoint_interval_ms = 5;
  options.drain_grace_ms = 0;
  Request slow = SlowRequest("exists x y . E(x,y) & S(y)", 2000000);

  {
    QrelServer server(TestEngine(), options);
    Response cancelled;
    std::thread client(
        [&server, &slow, &cancelled] { cancelled = server.Handle(slow); });
    // Wait until the run has checkpointed at least once, so the drain
    // demonstrably aborts mid-computation.
    WaitFor([&dir] {
      return !std::filesystem::is_empty(std::filesystem::path(dir));
    });
    server.Drain();
    client.join();
    EXPECT_EQ(cancelled.status.code(), StatusCode::kCancelled);
  }
  // The snapshot survived the cancelled run.
  ASSERT_FALSE(std::filesystem::is_empty(std::filesystem::path(dir)));

  // A fresh server with the same checkpoint dir resumes the identical
  // request instead of recomputing from zero.
  Response resumed;
  {
    QrelServer server(TestEngine(), options);
    resumed = server.Handle(slow);
    ASSERT_TRUE(resumed.ok()) << resumed.status.ToString();
    EXPECT_EQ(server.stats_snapshot().checkpoint_resumes, 1u);
  }
  // Success deleted the snapshot.
  EXPECT_TRUE(std::filesystem::is_empty(std::filesystem::path(dir)));

  // Bit-identical to a never-interrupted run of the same request.
  Response baseline;
  {
    ServerOptions clean = GenerousOptions();
    QrelServer server(TestEngine(), clean);
    baseline = server.Handle(slow);
    ASSERT_TRUE(baseline.ok()) << baseline.status.ToString();
  }
  EXPECT_EQ(resumed.Field("reliability"), baseline.Field("reliability"));
  EXPECT_EQ(resumed.Field("samples"), baseline.Field("samples"));
  EXPECT_EQ(resumed.Field("budget_spent"), baseline.Field("budget_spent"));

  std::filesystem::remove_all(dir);
}

// A corrupt leftover snapshot must not make the query permanently
// unanswerable: the server deletes it, counts it, and runs fresh.
TEST(ServerTest, CorruptLeftoverCheckpointIsDeletedNotFatal) {
  std::string dir = ::testing::TempDir() + "qrel_server_ckpt_corrupt";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  ServerOptions options = GenerousOptions();
  options.checkpoint_dir = dir;

  // Produce a real leftover snapshot via a drain-abort, then corrupt it
  // in place — the checkpoint path is content-keyed and private, so this
  // is the way to plant garbage exactly where the next run will look.
  {
    ServerOptions abort_options = options;
    abort_options.checkpoint_interval_ms = 5;
    abort_options.drain_grace_ms = 0;
    QrelServer server(TestEngine(), abort_options);
    Request slow = SlowRequest("exists x y . E(x,y) & S(y)", 2000000);
    std::thread client([&server, &slow] { (void)server.Handle(slow); });
    WaitFor([&dir] {
      return !std::filesystem::is_empty(std::filesystem::path(dir));
    });
    server.Drain();
    client.join();
  }
  // Corrupt the leftover snapshot in place.
  std::string snapshot_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    snapshot_path = entry.path().string();
  }
  ASSERT_FALSE(snapshot_path.empty());
  {
    std::FILE* f = std::fopen(snapshot_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a snapshot", f);
    std::fclose(f);
  }

  QrelServer server(TestEngine(), options);
  Request slow = SlowRequest("exists x y . E(x,y) & S(y)", 2000000);
  Response response = server.Handle(slow);
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.checkpoint_corrupt, 1u);
  EXPECT_EQ(stats.checkpoint_resumes, 0u);
  std::filesystem::remove_all(dir);
}

// N concurrent client threads hammering a mixed workload must get
// bit-identical answers to a single-threaded baseline: the engine is
// shared const state and every request is deterministically seeded.
TEST(ServerTest, ConcurrentClientsGetBitIdenticalAnswers) {
  std::vector<Request> workload;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Request sampled = SlowRequest("exists x y . E(x,y) & S(y)", 20000);
    sampled.options.seed = seed;
    workload.push_back(sampled);
    Request universal = SlowRequest("forall x . exists y . E(x,y) | S(x)",
                                    20000);
    universal.options.seed = seed;
    workload.push_back(universal);
  }
  workload.push_back(QueryRequest("exists x y . E(x,y) & S(y)"));
  workload.push_back(QueryRequest("S(x)"));

  // Single-threaded baseline, on its own server (cold cache).
  std::vector<std::string> baseline;
  {
    ServerOptions options = GenerousOptions();
    options.cache_capacity = 0;
    QrelServer server(TestEngine(), options);
    for (const Request& request : workload) {
      Response response = server.Handle(request);
      EXPECT_TRUE(response.ok()) << response.status.ToString();
      baseline.push_back(response.Field("reliability").value_or("?") + "|" +
                         response.Field("samples").value_or("?"));
    }
  }

  ServerOptions options = GenerousOptions();
  options.workers = 3;
  options.queue_capacity = 64;
  QrelServer server(TestEngine(), options);
  constexpr int kThreads = 6;
  std::vector<std::vector<std::string>> results(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &workload, &results, t] {
      for (const Request& request : workload) {
        Response response = server.Handle(request);
        ASSERT_TRUE(response.ok()) << response.status.ToString();
        results[t].push_back(response.Field("reliability").value_or("?") +
                             "|" + response.Field("samples").value_or("?"));
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], baseline) << "thread " << t;
  }
}

// --------------------------------------------------------------------------
// Multi-database catalog and per-tenant isolation (PR 7).

// Same shape as kUdbText with one error rate changed, so the exact
// reliability of the canary query differs: (1 - 1/2*1/3)*(1 - 1/5) = 2/3
// instead of 3/5.
constexpr char kAltUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/2
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
absent E 2 0 err=1/5
)";

UnreliableDatabase AltDatabase() {
  StatusOr<UnreliableDatabase> database = ParseUdb(kAltUdbText);
  EXPECT_TRUE(database.ok()) << database.status().ToString();
  return std::move(database).value();
}

std::string WriteTempUdb(const std::string& name, const char* text) {
  std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::fputs(text, f);
  std::fclose(f);
  return path;
}

Request AdminRequest(RequestVerb verb, const std::string& target,
                     const std::string& path = "") {
  Request request;
  request.verb = verb;
  request.target = target;
  request.path = path;
  return request;
}

TEST(ServerCatalogTest, RoutesQueriesByDbAndPinsVersionFields) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.catalog().AttachDatabase("alt", AltDatabase()).ok());

  Request request = QueryRequest("exists x y . E(x,y) & S(y)");
  Response on_default = server.Handle(request);
  ASSERT_TRUE(on_default.ok()) << on_default.status.ToString();
  EXPECT_EQ(on_default.Field("exact_value").value_or(""), "3/5");
  EXPECT_EQ(on_default.Field("db").value_or(""), "default");
  EXPECT_EQ(on_default.Field("db_version").value_or(""), "1");
  EXPECT_FALSE(on_default.Field("db_fingerprint").value_or("").empty());

  request.options.db = "alt";
  Response on_alt = server.Handle(request);
  ASSERT_TRUE(on_alt.ok()) << on_alt.status.ToString();
  EXPECT_EQ(on_alt.Field("exact_value").value_or(""), "2/3");
  EXPECT_EQ(on_alt.Field("db").value_or(""), "alt");
  EXPECT_NE(on_alt.Field("db_fingerprint"), on_default.Field("db_fingerprint"));

  // The cache keys on the database fingerprint: the same query against
  // the other database was a miss, not a cross-db replay.
  EXPECT_EQ(on_alt.Field("cache").value_or(""), "miss");

  request.options.db = "nonexistent";
  Response missing = server.Handle(request);
  EXPECT_EQ(missing.status.code(), StatusCode::kNotFound);

  request.options.db = "bad name!";
  Response invalid = server.Handle(request);
  EXPECT_EQ(invalid.status.code(), StatusCode::kInvalidArgument);
}

TEST(ServerCatalogTest, HealthReportsPerDatabaseReadiness) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.catalog().AttachDatabase("alt", AltDatabase()).ok());

  Request health;
  health.verb = RequestVerb::kHealth;
  Response response = server.Handle(health);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.Field("ready").value_or(""), "1");
  EXPECT_EQ(response.Field("databases").value_or(""), "2");
  EXPECT_EQ(response.Field("db.default.state").value_or(""), "serving");
  EXPECT_EQ(response.Field("db.alt.state").value_or(""), "serving");
  EXPECT_FALSE(response.Field("db.alt.version").value_or("").empty());

  server.BeginDrain();
  response = server.Handle(health);
  EXPECT_EQ(response.Field("ready").value_or(""), "0");
  EXPECT_EQ(response.Field("state").value_or(""), "draining");
}

TEST(ServerCatalogTest, EmptyCatalogIsNotReady) {
  QrelServer server{ServerOptions{}};
  Request health;
  health.verb = RequestVerb::kHealth;
  Response response = server.Handle(health);
  EXPECT_EQ(response.Field("ready").value_or(""), "0");
  EXPECT_EQ(response.Field("databases").value_or(""), "0");
  // And a query routed at the (empty) default database fails typed.
  Response query = server.Handle(QueryRequest("S(x)"));
  EXPECT_EQ(query.status.code(), StatusCode::kNotFound);
}

TEST(ServerCatalogTest, AdminVerbsDriveTheFullLifecycle) {
  std::string path = WriteTempUdb("qrel_admin_lifecycle.udb", kUdbText);
  QrelServer server(TestEngine(), ServerOptions{});

  // ATTACH a second database from disk.
  Response attached =
      server.Handle(AdminRequest(RequestVerb::kAttach, "spare", path));
  ASSERT_TRUE(attached.ok()) << attached.status.ToString();
  EXPECT_EQ(attached.Field("db").value_or(""), "spare");
  EXPECT_EQ(attached.Field("db_version").value_or(""), "1");
  EXPECT_EQ(attached.Field("universe_size").value_or(""), "3");

  // DBLIST sees both databases.
  Request dblist;
  dblist.verb = RequestVerb::kDblist;
  Response listed = server.Handle(dblist);
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.Field("databases").value_or(""), "2");
  EXPECT_EQ(listed.Field("db.spare.state").value_or(""), "serving");
  EXPECT_EQ(listed.Field("db.spare.path").value_or(""), path);

  // Query it, then RELOAD with changed content: version bumps, the
  // fingerprint changes, and the answer follows the new content.
  Request request = QueryRequest("exists x y . E(x,y) & S(y)");
  request.options.db = "spare";
  Response before = server.Handle(request);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.Field("exact_value").value_or(""), "3/5");

  WriteTempUdb("qrel_admin_lifecycle.udb", kAltUdbText);
  Response reloaded =
      server.Handle(AdminRequest(RequestVerb::kReload, "spare"));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status.ToString();
  EXPECT_EQ(reloaded.Field("changed").value_or(""), "1");
  EXPECT_EQ(reloaded.Field("old_version").value_or(""), "1");
  EXPECT_EQ(reloaded.Field("new_version").value_or(""), "2");
  EXPECT_NE(reloaded.Field("old_fingerprint"),
            reloaded.Field("new_fingerprint"));

  Response after = server.Handle(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.Field("exact_value").value_or(""), "2/3");
  EXPECT_EQ(after.Field("db_version").value_or(""), "2");
  EXPECT_EQ(after.Field("cache").value_or(""), "miss");

  // Reloading unchanged content is acknowledged but swaps nothing the
  // cache needs to forget.
  Response idempotent =
      server.Handle(AdminRequest(RequestVerb::kReload, "spare"));
  ASSERT_TRUE(idempotent.ok());
  EXPECT_EQ(idempotent.Field("changed").value_or(""), "0");

  // DETACH drains and removes it; further queries fail typed.
  Response detached =
      server.Handle(AdminRequest(RequestVerb::kDetach, "spare"));
  ASSERT_TRUE(detached.ok()) << detached.status.ToString();
  Response gone = server.Handle(request);
  EXPECT_EQ(gone.status.code(), StatusCode::kNotFound);
  listed = server.Handle(dblist);
  EXPECT_EQ(listed.Field("databases").value_or(""), "1");

  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.attaches, 1u);
  EXPECT_EQ(stats.reloads, 2u);
  EXPECT_EQ(stats.detaches, 1u);
  std::remove(path.c_str());
}

TEST(ServerCatalogTest, FailedReloadLeavesTheOldVersionServing) {
  std::string path = WriteTempUdb("qrel_failed_reload.udb", kUdbText);
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(
      server.Handle(AdminRequest(RequestVerb::kAttach, "spare", path)).ok());

  Request request = QueryRequest("exists x y . E(x,y) & S(y)");
  request.options.db = "spare";
  ASSERT_EQ(server.Handle(request).Field("exact_value").value_or(""), "3/5");

  // Poison the file, then reload: the reload fails typed and the old
  // version keeps serving, version and answer unchanged.
  WriteTempUdb("qrel_failed_reload.udb", "universe banana\n");
  Response failed = server.Handle(AdminRequest(RequestVerb::kReload, "spare"));
  EXPECT_FALSE(failed.ok());

  Response still = server.Handle(request);
  ASSERT_TRUE(still.ok()) << still.status.ToString();
  EXPECT_EQ(still.Field("exact_value").value_or(""), "3/5");
  EXPECT_EQ(still.Field("db_version").value_or(""), "1");
  EXPECT_EQ(server.stats_snapshot().reload_failures, 1u);
  std::remove(path.c_str());
}

TEST(ServerTenantTest, TokenBucketShedsWithRefillHintPerTenant) {
  ServerOptions options;
  options.tenant_rate_per_sec = 1;  // refills far slower than the test runs
  options.tenant_burst = 2;
  QrelServer server(TestEngine(), options);

  Request request = QueryRequest("S(x) & !S(x)");  // statically false, cheap
  request.options.tenant = "acme";
  ASSERT_TRUE(server.Handle(request).ok());
  ASSERT_TRUE(server.Handle(request).ok());
  Response shed = server.Handle(request);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(shed.retry_after_ms.has_value());
  EXPECT_GT(*shed.retry_after_ms, 0u);

  // A different tenant has its own bucket and is untouched.
  request.options.tenant = "zen";
  EXPECT_TRUE(server.Handle(request).ok());

  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.shed_tenant_rate, 1u);

  // Per-tenant counters, both via the typed snapshot and on the wire.
  std::vector<TenantStatsSnapshot> tenants = server.tenant_stats();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].name, "acme");
  EXPECT_EQ(tenants[0].admitted, 2u);
  EXPECT_EQ(tenants[0].shed_rate, 1u);
  EXPECT_EQ(tenants[1].name, "zen");
  EXPECT_EQ(tenants[1].admitted, 1u);

  Request stats_request;
  stats_request.verb = RequestVerb::kStats;
  Response wire = server.Handle(stats_request);
  EXPECT_EQ(wire.Field("tenant.acme.admitted").value_or(""), "2");
  EXPECT_EQ(wire.Field("tenant.acme.shed_rate").value_or(""), "1");
  EXPECT_EQ(wire.Field("tenant.zen.admitted").value_or(""), "1");
}

TEST(ServerTenantTest, WorkQuotaCapsOneTenantWithoutTouchingOthers) {
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 16;
  options.default_max_work = uint64_t{1} << 22;
  options.max_request_work = uint64_t{1} << 22;
  options.work_quota = uint64_t{1} << 30;
  // Room for exactly one default-budget request per tenant.
  options.tenant_work_quota = uint64_t{1} << 22;
  QrelServer server(TestEngine(), options);

  Request slow = SlowRequest("exists x y . E(x,y) & S(y)", 3000000);
  slow.options.tenant = "acme";
  std::thread hog([&server, &slow] { (void)server.Handle(slow); });
  WaitFor([&server] { return server.inflight() == 1; });

  Request second = slow;
  second.options.seed = 2;
  Response shed = server.Handle(second);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status.message().find("acme"), std::string::npos);

  // The other tenant's identical request admits fine.
  Request other = slow;
  other.options.seed = 3;
  other.options.tenant = "zen";
  Response fine = server.Handle(other);
  EXPECT_TRUE(fine.ok()) << fine.status.ToString();

  hog.join();
  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.shed_tenant_quota, 1u);
  EXPECT_EQ(stats.shed_quota, 0u);
}

}  // namespace
}  // namespace qrel
