// Durable server state (--state-dir): manifest persistence across
// restarts, the per-database recovery taxonomy (missing file, fingerprint
// drift, corrupt manifest — the server always starts and serves the
// last-good subset), the startup GC sweep (orphaned temps of dead
// writers reaped, a live writer's temp untouched), and idempotency-key
// journaling with post-crash recovery. Everything in-process: two
// QrelServer instances sharing a state dir stand in for a restart.

#include "qrel/net/server.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/net/manifest.h"
#include "qrel/net/protocol.h"
#include "qrel/prob/text_format.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/vfs.h"

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
absent E 2 0 err=1/5
)";

constexpr char kOtherUdbText[] = R"(
universe 2
relation E 2
relation S 1
fact E 0 1 err=1/2
fact S 1
)";

constexpr char kQuery[] = "exists x y . E(x,y) & S(y)";

// Forwards to the real filesystem but refuses to remove journal entries:
// the .idem record a completed query leaves behind under this Vfs is
// byte-for-byte what a crash between admission and response would have
// preserved — the server's real flight/store keys included.
class KeepJournalVfs : public Vfs {
 public:
  StatusOr<int> OpenWrite(const std::string& path) override {
    return RawPosixVfs().OpenWrite(path);
  }
  StatusOr<size_t> Write(int fd, const uint8_t* data, size_t size) override {
    return RawPosixVfs().Write(fd, data, size);
  }
  Status Fsync(int fd) override { return RawPosixVfs().Fsync(fd); }
  Status Close(int fd) override { return RawPosixVfs().Close(fd); }
  Status Rename(const std::string& from, const std::string& to) override {
    return RawPosixVfs().Rename(from, to);
  }
  Status Unlink(const std::string& path) override {
    if (path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".idem") == 0) {
      return Status::Ok();
    }
    return RawPosixVfs().Unlink(path);
  }
  Status FsyncDir(const std::string& dir) override {
    return RawPosixVfs().FsyncDir(dir);
  }
  StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path,
                                               size_t max_size) override {
    return RawPosixVfs().ReadFileBytes(path, max_size);
  }
  StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) override {
    return RawPosixVfs().ListDir(dir);
  }
};

class ServerRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/recovery_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0755);
  }

  void TearDown() override {
    StatusOr<std::vector<std::string>> names = ProcessVfs().ListDir(dir_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        (void)RawPosixVfs().Unlink(dir_ + "/" + name);
      }
    }
    ::rmdir(dir_.c_str());
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string WriteUdb(const std::string& name, const char* text) {
    std::string path = Path(name);
    std::ofstream out(path, std::ios::trunc);
    out << text;
    return path;
  }

  ServerOptions StateDirOptions() {
    ServerOptions options;
    options.state_dir = dir_;
    return options;
  }

  static Response Attach(QrelServer& server, const std::string& name,
                         const std::string& path) {
    Request request;
    request.verb = RequestVerb::kAttach;
    request.target = name;
    request.path = path;
    return server.Handle(request);
  }

  static Response Query(QrelServer& server, const std::string& db,
                        const std::string& idem = "") {
    Request request;
    request.verb = RequestVerb::kQuery;
    request.query = kQuery;
    request.options.db = db;
    request.options.idempotency_key = idem;
    return server.Handle(request);
  }

  std::vector<std::string> Listing() const {
    StatusOr<std::vector<std::string>> names = ProcessVfs().ListDir(dir_);
    std::vector<std::string> sorted = names.ok() ? *names
                                                 : std::vector<std::string>{};
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

  std::string dir_;
};

TEST_F(ServerRecoveryTest, AttachPersistsManifestAndRestartRecovers) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  std::string fingerprint;
  {
    QrelServer server(StateDirOptions());
    Response attached = Attach(server, "db1", udb);
    ASSERT_TRUE(attached.ok()) << attached.status.ToString();
    EXPECT_EQ(attached.Field("manifest").value_or(""), "written");
    fingerprint = attached.Field("db_fingerprint").value_or("");
    ASSERT_FALSE(fingerprint.empty());
  }
  StatusOr<CatalogManifest> manifest =
      ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->entries.size(), 1u);
  EXPECT_EQ(manifest->entries[0].name, "db1");
  EXPECT_EQ(manifest->entries[0].source_path, udb);

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_TRUE(report.manifest_found);
  EXPECT_FALSE(report.manifest_corrupt);
  EXPECT_EQ(report.reattached, 1u);
  EXPECT_TRUE(report.failures.empty());

  Response answer = Query(restarted, "db1");
  ASSERT_TRUE(answer.ok()) << answer.status.ToString();
  EXPECT_EQ(answer.Field("exact_value").value_or(""), "3/5");
  // Same file, same content: the recovered fingerprint is bit-identical.
  EXPECT_EQ(answer.Field("db_fingerprint").value_or(""), fingerprint);
}

TEST_F(ServerRecoveryTest, MemoryAttachedDatabasesStayOutOfTheManifest) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  QrelServer server(StateDirOptions());
  StatusOr<UnreliableDatabase> database = ParseUdb(kOtherUdbText);
  ASSERT_TRUE(database.ok());
  ASSERT_TRUE(server.catalog()
                  .AttachDatabase("in_memory", std::move(database).value())
                  .ok());
  ASSERT_TRUE(Attach(server, "on_disk", udb).ok());
  StatusOr<CatalogManifest> manifest =
      ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 1u);
  EXPECT_EQ(manifest->entries[0].name, "on_disk");
}

TEST_F(ServerRecoveryTest, DetachAndReloadRewriteTheManifest) {
  std::string udb1 = WriteUdb("one.udb", kUdbText);
  std::string udb2 = WriteUdb("two.udb", kUdbText);
  QrelServer server(StateDirOptions());
  ASSERT_TRUE(Attach(server, "one", udb1).ok());
  ASSERT_TRUE(Attach(server, "two", udb2).ok());

  Request reload;
  reload.verb = RequestVerb::kReload;
  reload.target = "two";
  Response reloaded = server.Handle(reload);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status.ToString();
  EXPECT_EQ(reloaded.Field("manifest").value_or(""), "written");
  StatusOr<CatalogManifest> manifest =
      ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 2u);
  EXPECT_EQ(manifest->entries[1].version, 2u)
      << "reload must persist the bumped version";

  Request detach;
  detach.verb = RequestVerb::kDetach;
  detach.target = "one";
  Response detached = server.Handle(detach);
  ASSERT_TRUE(detached.ok()) << detached.status.ToString();
  EXPECT_EQ(detached.Field("manifest").value_or(""), "written");
  manifest = ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 1u);
  EXPECT_EQ(manifest->entries[0].name, "two");
}

TEST_F(ServerRecoveryTest, MissingSourceFileCostsTheEntryNotTheProcess) {
  std::string udb = WriteUdb("gone.udb", kUdbText);
  std::string kept = WriteUdb("kept.udb", kUdbText);
  {
    QrelServer server(StateDirOptions());
    ASSERT_TRUE(Attach(server, "doomed", udb).ok());
    ASSERT_TRUE(Attach(server, "kept", kept).ok());
  }
  ASSERT_TRUE(RawPosixVfs().Unlink(udb).ok());

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_EQ(report.reattached, 1u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("doomed"), std::string::npos);
  EXPECT_NE(report.failures[0].find("missing"), std::string::npos)
      << report.failures[0];
  // The surviving subset serves; the missing one is typed NOT_FOUND.
  EXPECT_TRUE(Query(restarted, "kept").ok());
  EXPECT_EQ(Query(restarted, "doomed").status.code(), StatusCode::kNotFound);
  // The re-persisted manifest dropped the dead entry: the next restart
  // does not re-report it.
  StatusOr<CatalogManifest> manifest =
      ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 1u);
  EXPECT_EQ(manifest->entries[0].name, "kept");
}

TEST_F(ServerRecoveryTest, FingerprintDriftExcludesTheDatabase) {
  std::string udb = WriteUdb("drift.udb", kUdbText);
  {
    QrelServer server(StateDirOptions());
    ASSERT_TRUE(Attach(server, "drifter", udb).ok());
  }
  // The file changes behind the manifest's back.
  WriteUdb("drift.udb", kOtherUdbText);

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_EQ(report.reattached, 0u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("fingerprint drift"), std::string::npos)
      << report.failures[0];
  // Serving a drifted file silently would fake bit-identical answers;
  // the database is excluded instead.
  EXPECT_EQ(Query(restarted, "drifter").status.code(), StatusCode::kNotFound);
}

TEST_F(ServerRecoveryTest, CorruptManifestStillStartsTheServer) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  {
    QrelServer server(StateDirOptions());
    ASSERT_TRUE(Attach(server, "db1", udb).ok());
  }
  // Flip one byte mid-file: the checksum catches it.
  StatusOr<std::vector<uint8_t>> bytes =
      ProcessVfs().ReadFileBytes(Path("catalog.manifest"), 1 << 20);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> corrupt = *bytes;
  corrupt[corrupt.size() / 2] ^= 0xff;
  std::ofstream out(Path("catalog.manifest"), std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(corrupt.data()),
            static_cast<std::streamsize>(corrupt.size()));
  out.close();

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_TRUE(report.manifest_found);
  EXPECT_TRUE(report.manifest_corrupt);
  EXPECT_EQ(report.reattached, 0u);
  // The server still serves: a fresh ATTACH works and rewrites the
  // manifest atomically over the corpse.
  ASSERT_TRUE(Attach(restarted, "db1", udb).ok());
  EXPECT_TRUE(ReadManifestFile(Path("catalog.manifest")).ok());
}

TEST_F(ServerRecoveryTest, GcReapsDeadWritersTempsButSparesLiveOnes) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  // Crashed writers' orphans, in both temp-name generations (bare pid and
  // pid.seq): the pid is guaranteed unused (pid_max on Linux is < 2^22,
  // so kill() reports ESRCH for it).
  std::string orphan = Path("old.snap.tmp.999999999");
  std::string orphan_seq = Path("older.snap.tmp.999999999.7");
  std::string live = Path("inflight.snap.tmp." +
                          std::to_string(static_cast<long>(::getpid())) +
                          ".3");
  // A pid field that does not fit a 32-bit pid was not written by
  // WriteSnapshotFile; probing its truncation could name an unrelated
  // live process, so the sweep must leave the file alone.
  std::string overflow = Path("weird.snap.tmp.4294967295");
  std::ofstream(orphan) << "torn";
  std::ofstream(orphan_seq) << "torn";
  std::ofstream(live) << "in progress";
  std::ofstream(overflow) << "not ours";
  // An undecodable checkpoint leftover.
  std::ofstream(Path("q0000000000000001.snap")) << "garbage";

  QrelServer server(StateDirOptions());
  RecoveryReport report = server.RecoverState();
  EXPECT_EQ(report.gc_removed_temp, 2u);
  EXPECT_EQ(report.gc_removed_corrupt, 1u);

  std::vector<std::string> names = Listing();
  EXPECT_EQ(names, (std::vector<std::string>{
                       "data.udb",
                       "inflight.snap.tmp." +
                           std::to_string(static_cast<long>(::getpid())) +
                           ".3",
                       "weird.snap.tmp.4294967295"}))
      << "GC must reap the dead writers' temps and the corrupt checkpoint, "
         "and must NOT touch a live writer's temp or an overflowing pid";
}

TEST_F(ServerRecoveryTest, JournaledKeyRecoversOnceThenConsumes) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  std::string expect_value;
  {
    // Run the journaled query with journal removal suppressed: the .idem
    // record left on disk carries the keys the server actually computed,
    // exactly as a crash between admission and response would leave it.
    KeepJournalVfs keep;
    ScopedVfsOverride vfs_override(&keep);
    QrelServer server(StateDirOptions());
    ASSERT_TRUE(Attach(server, "db1", udb).ok());
    Response pre_crash = Query(server, "db1", "retry-me");
    ASSERT_TRUE(pre_crash.ok()) << pre_crash.status.ToString();
    expect_value = pre_crash.Field("exact_value").value_or("");
    ASSERT_FALSE(expect_value.empty());
  }
  // The record survived at its canonical key-embedding path...
  ASSERT_TRUE(ReadIdempotencyFile(Path("k-retry-me.idem")).ok());
  // ...and a torn one: counted, removed, never mistaken for live state.
  std::ofstream(Path("k-torn.idem")) << "torn journal";

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_EQ(report.journal_recovered, 1u);
  EXPECT_EQ(report.journal_corrupt, 1u);

  Response first = Query(restarted, "db1", "retry-me");
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  EXPECT_EQ(first.Field("idempotency_key").value_or(""), "retry-me");
  EXPECT_EQ(first.Field("recovered").value_or(""), "1");
  EXPECT_EQ(first.Field("exact_value").value_or(""), expect_value);

  // Consumed: the identical retry is now an ordinary (cached) query.
  Response second = Query(restarted, "db1", "retry-me");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.Field("recovered").value_or(""), "0");

  // The journal file written for the completed request was cleaned up.
  for (const std::string& name : Listing()) {
    EXPECT_EQ(name.find(".idem"), std::string::npos)
        << "journal entry leaked: " << name;
  }
}

TEST_F(ServerRecoveryTest, MismatchedJournalRecordDoesNotClaimRecovery) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  {
    QrelServer server(StateDirOptions());
    ASSERT_TRUE(Attach(server, "db1", udb).ok());
  }
  // A surviving record whose identity does not match the retry:
  // fabricated keys stand in for "same key, different query" or "same
  // key, database changed since the crash". Written under a non-canonical
  // name, which recovery must also normalize away.
  IdempotencyRecord record;
  record.key = "retry-me";
  record.flight_key = 1;
  record.store_key = 2;
  record.db_fingerprint = 3;
  ASSERT_TRUE(WriteIdempotencyFile(Path("k0001.idem"), record).ok());

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_EQ(report.journal_recovered, 1u);
  for (const std::string& name : Listing()) {
    EXPECT_NE(name, "k0001.idem")
        << "non-canonical journal name must be normalized away";
  }

  // The key is consumed, but this request did not resume the journaled
  // computation and must not report that it did.
  Response response = Query(restarted, "db1", "retry-me");
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.Field("recovered").value_or(""), "0");
  Response again = Query(restarted, "db1", "retry-me");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.Field("recovered").value_or(""), "0");
}

TEST_F(ServerRecoveryTest, DistinctKeysGetDistinctJournalFiles) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  KeepJournalVfs keep;
  ScopedVfsOverride vfs_override(&keep);
  QrelServer server(StateDirOptions());
  ASSERT_TRUE(Attach(server, "db1", udb).ok());
  ASSERT_TRUE(Query(server, "db1", "key-a").ok());
  ASSERT_TRUE(Query(server, "db1", "key-b").ok());
  // The key is embedded in the filename, so two in-flight keys can never
  // share (and tear, or silently overwrite) one journal file the way
  // colliding 64-bit hashes could.
  EXPECT_TRUE(ReadIdempotencyFile(Path("k-key-a.idem")).ok());
  EXPECT_TRUE(ReadIdempotencyFile(Path("k-key-b.idem")).ok());
}

TEST_F(ServerRecoveryTest, ConcurrentAdminVerbsKeepTheManifestWhole) {
  // Admin verbs run on independent connection threads; every interleaved
  // PersistManifest must publish a whole, checksummed manifest. Before
  // persistence was serialized, two writers shared one temp file (torn
  // manifest renamed into place) and the slower one could rename a stale
  // catalog snapshot over the newer (lost update).
  std::string udb = WriteUdb("data.udb", kUdbText);
  QrelServer server(StateDirOptions());
  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::atomic<bool> done{false};
  // A concurrent reader sees every published manifest: rename is atomic,
  // so anything other than a whole, decodable file is a torn write.
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      StatusOr<CatalogManifest> manifest =
          ReadManifestFile(Path("catalog.manifest"));
      if (!manifest.ok()) {
        EXPECT_EQ(manifest.status().code(), StatusCode::kNotFound)
            << manifest.status().ToString();
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      const std::string name = "db" + std::to_string(t);
      for (int round = 0; round < kRounds; ++round) {
        EXPECT_TRUE(Attach(server, name, udb).ok());
        Request detach;
        detach.verb = RequestVerb::kDetach;
        detach.target = name;
        EXPECT_TRUE(server.Handle(detach).ok());
      }
      EXPECT_TRUE(Attach(server, name, udb).ok());
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }
  done.store(true, std::memory_order_relaxed);
  reader.join();

  // No lost update: the final manifest holds exactly the databases that
  // finished attached.
  StatusOr<CatalogManifest> manifest =
      ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->entries.size(), static_cast<size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(manifest->entries[static_cast<size_t>(t)].name,
              "db" + std::to_string(t));
  }
}

TEST_F(ServerRecoveryTest, InvalidIdempotencyKeyIsRejectedTyped) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  QrelServer server(StateDirOptions());
  ASSERT_TRUE(Attach(server, "db1", udb).ok());
  Response response = Query(server, "db1", "bad key!");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerRecoveryTest, StateDirDefaultsTheCheckpointDir) {
  QrelServer server(StateDirOptions());
  EXPECT_EQ(server.options().checkpoint_dir, dir_);
  ServerOptions both = StateDirOptions();
  both.checkpoint_dir = "/elsewhere";
  QrelServer other(both);
  EXPECT_EQ(other.options().checkpoint_dir, "/elsewhere");
}

TEST_F(ServerRecoveryTest, FaultVerbIsGatedByOption) {
  QrelServer locked(StateDirOptions());
  Request fault;
  fault.verb = RequestVerb::kFault;
  fault.target = "vfs.write:1";
  Response refused = locked.Handle(fault);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status.code(), StatusCode::kFailedPrecondition);

  ServerOptions drills = StateDirOptions();
  drills.enable_fault_verb = true;
  QrelServer open(drills);
  Response armed = open.Handle(fault);
  ASSERT_TRUE(armed.ok()) << armed.status.ToString();
  EXPECT_EQ(armed.Field("armed").value_or(""), "vfs.write:1");
  FaultInjector::Instance().Reset();

  Response bad = open.Handle([] {
    Request r;
    r.verb = RequestVerb::kFault;
    r.target = "";
    return r;
  }());
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace qrel
