// Durable server state (--state-dir): manifest persistence across
// restarts, the per-database recovery taxonomy (missing file, fingerprint
// drift, corrupt manifest — the server always starts and serves the
// last-good subset), the startup GC sweep (orphaned temps of dead
// writers reaped, a live writer's temp untouched), and idempotency-key
// journaling with post-crash recovery. Everything in-process: two
// QrelServer instances sharing a state dir stand in for a restart.

#include "qrel/net/server.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/net/manifest.h"
#include "qrel/net/protocol.h"
#include "qrel/prob/text_format.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/vfs.h"

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
absent E 2 0 err=1/5
)";

constexpr char kOtherUdbText[] = R"(
universe 2
relation E 2
relation S 1
fact E 0 1 err=1/2
fact S 1
)";

constexpr char kQuery[] = "exists x y . E(x,y) & S(y)";

class ServerRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/recovery_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0755);
  }

  void TearDown() override {
    StatusOr<std::vector<std::string>> names = ProcessVfs().ListDir(dir_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        (void)RawPosixVfs().Unlink(dir_ + "/" + name);
      }
    }
    ::rmdir(dir_.c_str());
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string WriteUdb(const std::string& name, const char* text) {
    std::string path = Path(name);
    std::ofstream out(path, std::ios::trunc);
    out << text;
    return path;
  }

  ServerOptions StateDirOptions() {
    ServerOptions options;
    options.state_dir = dir_;
    return options;
  }

  static Response Attach(QrelServer& server, const std::string& name,
                         const std::string& path) {
    Request request;
    request.verb = RequestVerb::kAttach;
    request.target = name;
    request.path = path;
    return server.Handle(request);
  }

  static Response Query(QrelServer& server, const std::string& db,
                        const std::string& idem = "") {
    Request request;
    request.verb = RequestVerb::kQuery;
    request.query = kQuery;
    request.options.db = db;
    request.options.idempotency_key = idem;
    return server.Handle(request);
  }

  std::vector<std::string> Listing() const {
    StatusOr<std::vector<std::string>> names = ProcessVfs().ListDir(dir_);
    std::vector<std::string> sorted = names.ok() ? *names
                                                 : std::vector<std::string>{};
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

  std::string dir_;
};

TEST_F(ServerRecoveryTest, AttachPersistsManifestAndRestartRecovers) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  std::string fingerprint;
  {
    QrelServer server(StateDirOptions());
    Response attached = Attach(server, "db1", udb);
    ASSERT_TRUE(attached.ok()) << attached.status.ToString();
    EXPECT_EQ(attached.Field("manifest").value_or(""), "written");
    fingerprint = attached.Field("db_fingerprint").value_or("");
    ASSERT_FALSE(fingerprint.empty());
  }
  StatusOr<CatalogManifest> manifest =
      ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->entries.size(), 1u);
  EXPECT_EQ(manifest->entries[0].name, "db1");
  EXPECT_EQ(manifest->entries[0].source_path, udb);

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_TRUE(report.manifest_found);
  EXPECT_FALSE(report.manifest_corrupt);
  EXPECT_EQ(report.reattached, 1u);
  EXPECT_TRUE(report.failures.empty());

  Response answer = Query(restarted, "db1");
  ASSERT_TRUE(answer.ok()) << answer.status.ToString();
  EXPECT_EQ(answer.Field("exact_value").value_or(""), "3/5");
  // Same file, same content: the recovered fingerprint is bit-identical.
  EXPECT_EQ(answer.Field("db_fingerprint").value_or(""), fingerprint);
}

TEST_F(ServerRecoveryTest, MemoryAttachedDatabasesStayOutOfTheManifest) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  QrelServer server(StateDirOptions());
  StatusOr<UnreliableDatabase> database = ParseUdb(kOtherUdbText);
  ASSERT_TRUE(database.ok());
  ASSERT_TRUE(server.catalog()
                  .AttachDatabase("in_memory", std::move(database).value())
                  .ok());
  ASSERT_TRUE(Attach(server, "on_disk", udb).ok());
  StatusOr<CatalogManifest> manifest =
      ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 1u);
  EXPECT_EQ(manifest->entries[0].name, "on_disk");
}

TEST_F(ServerRecoveryTest, DetachAndReloadRewriteTheManifest) {
  std::string udb1 = WriteUdb("one.udb", kUdbText);
  std::string udb2 = WriteUdb("two.udb", kUdbText);
  QrelServer server(StateDirOptions());
  ASSERT_TRUE(Attach(server, "one", udb1).ok());
  ASSERT_TRUE(Attach(server, "two", udb2).ok());

  Request reload;
  reload.verb = RequestVerb::kReload;
  reload.target = "two";
  Response reloaded = server.Handle(reload);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status.ToString();
  EXPECT_EQ(reloaded.Field("manifest").value_or(""), "written");
  StatusOr<CatalogManifest> manifest =
      ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 2u);
  EXPECT_EQ(manifest->entries[1].version, 2u)
      << "reload must persist the bumped version";

  Request detach;
  detach.verb = RequestVerb::kDetach;
  detach.target = "one";
  Response detached = server.Handle(detach);
  ASSERT_TRUE(detached.ok()) << detached.status.ToString();
  EXPECT_EQ(detached.Field("manifest").value_or(""), "written");
  manifest = ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 1u);
  EXPECT_EQ(manifest->entries[0].name, "two");
}

TEST_F(ServerRecoveryTest, MissingSourceFileCostsTheEntryNotTheProcess) {
  std::string udb = WriteUdb("gone.udb", kUdbText);
  std::string kept = WriteUdb("kept.udb", kUdbText);
  {
    QrelServer server(StateDirOptions());
    ASSERT_TRUE(Attach(server, "doomed", udb).ok());
    ASSERT_TRUE(Attach(server, "kept", kept).ok());
  }
  ASSERT_TRUE(RawPosixVfs().Unlink(udb).ok());

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_EQ(report.reattached, 1u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("doomed"), std::string::npos);
  EXPECT_NE(report.failures[0].find("missing"), std::string::npos)
      << report.failures[0];
  // The surviving subset serves; the missing one is typed NOT_FOUND.
  EXPECT_TRUE(Query(restarted, "kept").ok());
  EXPECT_EQ(Query(restarted, "doomed").status.code(), StatusCode::kNotFound);
  // The re-persisted manifest dropped the dead entry: the next restart
  // does not re-report it.
  StatusOr<CatalogManifest> manifest =
      ReadManifestFile(Path("catalog.manifest"));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 1u);
  EXPECT_EQ(manifest->entries[0].name, "kept");
}

TEST_F(ServerRecoveryTest, FingerprintDriftExcludesTheDatabase) {
  std::string udb = WriteUdb("drift.udb", kUdbText);
  {
    QrelServer server(StateDirOptions());
    ASSERT_TRUE(Attach(server, "drifter", udb).ok());
  }
  // The file changes behind the manifest's back.
  WriteUdb("drift.udb", kOtherUdbText);

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_EQ(report.reattached, 0u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("fingerprint drift"), std::string::npos)
      << report.failures[0];
  // Serving a drifted file silently would fake bit-identical answers;
  // the database is excluded instead.
  EXPECT_EQ(Query(restarted, "drifter").status.code(), StatusCode::kNotFound);
}

TEST_F(ServerRecoveryTest, CorruptManifestStillStartsTheServer) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  {
    QrelServer server(StateDirOptions());
    ASSERT_TRUE(Attach(server, "db1", udb).ok());
  }
  // Flip one byte mid-file: the checksum catches it.
  StatusOr<std::vector<uint8_t>> bytes =
      ProcessVfs().ReadFileBytes(Path("catalog.manifest"), 1 << 20);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> corrupt = *bytes;
  corrupt[corrupt.size() / 2] ^= 0xff;
  std::ofstream out(Path("catalog.manifest"), std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(corrupt.data()),
            static_cast<std::streamsize>(corrupt.size()));
  out.close();

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_TRUE(report.manifest_found);
  EXPECT_TRUE(report.manifest_corrupt);
  EXPECT_EQ(report.reattached, 0u);
  // The server still serves: a fresh ATTACH works and rewrites the
  // manifest atomically over the corpse.
  ASSERT_TRUE(Attach(restarted, "db1", udb).ok());
  EXPECT_TRUE(ReadManifestFile(Path("catalog.manifest")).ok());
}

TEST_F(ServerRecoveryTest, GcReapsDeadWritersTempsButSparesLiveOnes) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  // A crashed writer's orphan: the pid is guaranteed unused (pid_max on
  // Linux is < 2^22, so kill() reports ESRCH for it).
  std::string orphan = Path("old.snap.tmp.999999999");
  std::string live = Path("inflight.snap.tmp." +
                          std::to_string(static_cast<long>(::getpid())));
  std::ofstream(orphan) << "torn";
  std::ofstream(live) << "in progress";
  // An undecodable checkpoint leftover.
  std::ofstream(Path("q0000000000000001.snap")) << "garbage";

  QrelServer server(StateDirOptions());
  RecoveryReport report = server.RecoverState();
  EXPECT_EQ(report.gc_removed_temp, 1u);
  EXPECT_EQ(report.gc_removed_corrupt, 1u);

  std::vector<std::string> names = Listing();
  EXPECT_EQ(names, (std::vector<std::string>{
                       "data.udb",
                       "inflight.snap.tmp." +
                           std::to_string(static_cast<long>(::getpid()))}))
      << "GC must reap the dead writer's temp and the corrupt checkpoint, "
         "and must NOT touch a live writer's temp";
}

TEST_F(ServerRecoveryTest, JournaledKeyRecoversOnceThenConsumes) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  {
    QrelServer server(StateDirOptions());
    ASSERT_TRUE(Attach(server, "db1", udb).ok());
  }
  // A journal record surviving a crash (written as the server would).
  IdempotencyRecord record;
  record.key = "retry-me";
  record.flight_key = 1;
  record.store_key = 2;
  record.db_fingerprint = 3;
  ASSERT_TRUE(WriteIdempotencyFile(Path("k0001.idem"), record).ok());
  // And a torn one: counted, removed, never mistaken for live state.
  std::ofstream(Path("k0002.idem")) << "torn journal";

  QrelServer restarted(StateDirOptions());
  RecoveryReport report = restarted.RecoverState();
  EXPECT_EQ(report.journal_recovered, 1u);
  EXPECT_EQ(report.journal_corrupt, 1u);

  Response first = Query(restarted, "db1", "retry-me");
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  EXPECT_EQ(first.Field("idempotency_key").value_or(""), "retry-me");
  EXPECT_EQ(first.Field("recovered").value_or(""), "1");
  EXPECT_EQ(first.Field("exact_value").value_or(""), "3/5");

  // Consumed: the identical retry is now an ordinary (cached) query.
  Response second = Query(restarted, "db1", "retry-me");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.Field("recovered").value_or(""), "0");

  // The journal file written for the completed request was cleaned up.
  for (const std::string& name : Listing()) {
    EXPECT_EQ(name.find(".idem"), std::string::npos)
        << "journal entry leaked: " << name;
  }
}

TEST_F(ServerRecoveryTest, InvalidIdempotencyKeyIsRejectedTyped) {
  std::string udb = WriteUdb("data.udb", kUdbText);
  QrelServer server(StateDirOptions());
  ASSERT_TRUE(Attach(server, "db1", udb).ok());
  Response response = Query(server, "db1", "bad key!");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerRecoveryTest, StateDirDefaultsTheCheckpointDir) {
  QrelServer server(StateDirOptions());
  EXPECT_EQ(server.options().checkpoint_dir, dir_);
  ServerOptions both = StateDirOptions();
  both.checkpoint_dir = "/elsewhere";
  QrelServer other(both);
  EXPECT_EQ(other.options().checkpoint_dir, "/elsewhere");
}

TEST_F(ServerRecoveryTest, FaultVerbIsGatedByOption) {
  QrelServer locked(StateDirOptions());
  Request fault;
  fault.verb = RequestVerb::kFault;
  fault.target = "vfs.write:1";
  Response refused = locked.Handle(fault);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status.code(), StatusCode::kFailedPrecondition);

  ServerOptions drills = StateDirOptions();
  drills.enable_fault_verb = true;
  QrelServer open(drills);
  Response armed = open.Handle(fault);
  ASSERT_TRUE(armed.ok()) << armed.status.ToString();
  EXPECT_EQ(armed.Field("armed").value_or(""), "vfs.write:1");
  FaultInjector::Instance().Reset();

  Response bad = open.Handle([] {
    Request r;
    r.verb = RequestVerb::kFault;
    r.target = "";
    return r;
  }());
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace qrel
