#include <memory>

#include <gtest/gtest.h>

#include "qrel/metafinite/functional_database.h"
#include "qrel/metafinite/reliability.h"
#include "qrel/metafinite/term.h"

namespace qrel {
namespace {

// salary : A -> Q over a 4-element universe; dept : A -> Q as group key.
UnreliableFunctionalDatabase PayrollDatabase() {
  auto vocabulary = std::make_shared<FunctionalVocabulary>();
  int salary = vocabulary->AddFunction("salary", 1);
  int dept = vocabulary->AddFunction("dept", 1);
  FunctionalStructure observed(vocabulary, 4);
  observed.SetValue(salary, {0}, Rational(100));
  observed.SetValue(salary, {1}, Rational(200));
  observed.SetValue(salary, {2}, Rational(300));
  observed.SetValue(salary, {3}, Rational(400));
  observed.SetValue(dept, {0}, Rational(1));
  observed.SetValue(dept, {1}, Rational(1));
  observed.SetValue(dept, {2}, Rational(2));
  observed.SetValue(dept, {3}, Rational(2));
  return UnreliableFunctionalDatabase(std::move(observed));
}

ValueDistribution TwoPoint(Rational a, Rational pa, Rational b) {
  ValueDistribution distribution;
  distribution.outcomes.push_back({std::move(a), pa});
  distribution.outcomes.push_back({std::move(b), pa.Complement()});
  return distribution;
}

TEST(FunctionalVocabularyTest, AddAndFind) {
  FunctionalVocabulary vocabulary;
  int f = vocabulary.AddFunction("f", 2);
  EXPECT_EQ(vocabulary.function_count(), 1);
  EXPECT_EQ(vocabulary.function(f).arity, 2);
  EXPECT_EQ(vocabulary.FindFunction("f"), f);
  EXPECT_FALSE(vocabulary.FindFunction("g").has_value());
}

TEST(FunctionalStructureTest, DefaultValueIsZero) {
  auto vocabulary = std::make_shared<FunctionalVocabulary>();
  vocabulary->AddFunction("f", 1);
  FunctionalStructure structure(vocabulary, 3);
  EXPECT_TRUE(structure.Value(0, {2}).IsZero());
  structure.SetValue(0, {2}, Rational(5, 2));
  EXPECT_EQ(structure.Value(0, {2}), Rational(5, 2));
}

TEST(ValueDistributionTest, Validation) {
  ValueDistribution ok = TwoPoint(Rational(1), Rational(1, 3), Rational(2));
  EXPECT_TRUE(ok.Validate().ok());

  ValueDistribution empty;
  EXPECT_FALSE(empty.Validate().ok());

  ValueDistribution bad_sum;
  bad_sum.outcomes.push_back({Rational(1), Rational(1, 3)});
  bad_sum.outcomes.push_back({Rational(2), Rational(1, 3)});
  EXPECT_FALSE(bad_sum.Validate().ok());

  ValueDistribution duplicate;
  duplicate.outcomes.push_back({Rational(1), Rational(1, 2)});
  duplicate.outcomes.push_back({Rational(1), Rational(1, 2)});
  EXPECT_FALSE(duplicate.Validate().ok());

  ValueDistribution negative;
  negative.outcomes.push_back({Rational(1), Rational(-1, 2)});
  negative.outcomes.push_back({Rational(2), Rational(3, 2)});
  EXPECT_FALSE(negative.Validate().ok());
}

TEST(UnreliableFunctionalDatabaseTest, WorldProbabilitiesSumToOne) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  int salary = *db.vocabulary().FindFunction("salary");
  ASSERT_TRUE(db.SetDistribution(
                    FunctionEntry{salary, {0}},
                    TwoPoint(Rational(100), Rational(2, 3), Rational(150)))
                  .ok());
  ValueDistribution three;
  three.outcomes.push_back({Rational(200), Rational(1, 2)});
  three.outcomes.push_back({Rational(250), Rational(1, 3)});
  three.outcomes.push_back({Rational(300), Rational(1, 6)});
  ASSERT_TRUE(db.SetDistribution(FunctionEntry{salary, {1}}, three).ok());

  EXPECT_EQ(db.WorldCount(), 6u);
  Rational total;
  int worlds = 0;
  db.ForEachWorld([&](const FunctionalWorld& world, const Rational& p) {
    ++worlds;
    total += p;
    EXPECT_EQ(p, db.WorldProbability(world));
  });
  EXPECT_EQ(worlds, 6);
  EXPECT_TRUE(total.IsOne());
}

TEST(UnreliableFunctionalDatabaseTest, WorldViewReadsOutcomes) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  int salary = *db.vocabulary().FindFunction("salary");
  int id = *db.SetDistribution(
      FunctionEntry{salary, {0}},
      TwoPoint(Rational(100), Rational(1, 2), Rational(150)));

  FunctionalWorld world(1, 0);
  EXPECT_EQ(FunctionalWorldView(db, world).Value(salary, {0}),
            Rational(100));
  world[static_cast<size_t>(id)] = 1;
  EXPECT_EQ(FunctionalWorldView(db, world).Value(salary, {0}),
            Rational(150));
  // Certain entries read the observed value.
  EXPECT_EQ(FunctionalWorldView(db, world).Value(salary, {3}),
            Rational(400));
}

TEST(MTermTest, ToStringAndFreeVariables) {
  MTermPtr term = MAdd(MApply("salary", {Term::Var("x")}), MConst(5));
  EXPECT_EQ(term->ToString(), "(salary(x) + 5)");
  EXPECT_EQ(term->FreeVariables(), (std::vector<std::string>{"x"}));
  EXPECT_TRUE(term->IsQuantifierFree());

  MTermPtr aggregate = MSum("y", MApply("salary", {Term::Var("y")}));
  EXPECT_EQ(aggregate->ToString(), "sum y . (salary(y))");
  EXPECT_TRUE(aggregate->FreeVariables().empty());
  EXPECT_FALSE(aggregate->IsQuantifierFree());
}

TEST(MTermTest, ValidateCatchesBadFunctions) {
  auto vocabulary = std::make_shared<FunctionalVocabulary>();
  vocabulary->AddFunction("f", 1);
  EXPECT_TRUE(ValidateTerm(MApply("f", {Term::Var("x")}), *vocabulary).ok());
  EXPECT_FALSE(ValidateTerm(MApply("g", {Term::Var("x")}), *vocabulary).ok());
  EXPECT_FALSE(ValidateTerm(MApply("f", {}), *vocabulary).ok());
}

TEST(MTermTest, ArithmeticEvaluation) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  const FunctionalStructure& s = db.observed();
  EXPECT_EQ(EvalTerm(MConst(Rational(7, 2)), s, {}), Rational(7, 2));
  EXPECT_EQ(EvalTerm(MAdd(MConst(1), MConst(2)), s, {}), Rational(3));
  EXPECT_EQ(EvalTerm(MSub(MConst(1), MConst(2)), s, {}), Rational(-1));
  EXPECT_EQ(EvalTerm(MMul(MConst(3), MConst(4)), s, {}), Rational(12));
  EXPECT_EQ(EvalTerm(MDiv(MConst(3), MConst(4)), s, {}), Rational(3, 4));
  // Division by zero is total and yields 0.
  EXPECT_TRUE(EvalTerm(MDiv(MConst(3), MConst(0)), s, {}).IsZero());
  EXPECT_EQ(EvalTerm(MNeg(MConst(5)), s, {}), Rational(-5));
}

TEST(MTermTest, ComparisonsAndBooleans) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  const FunctionalStructure& s = db.observed();
  EXPECT_EQ(EvalTerm(MEq(MConst(2), MConst(2)), s, {}), Rational(1));
  EXPECT_EQ(EvalTerm(MEq(MConst(2), MConst(3)), s, {}), Rational(0));
  EXPECT_EQ(EvalTerm(MLess(MConst(2), MConst(3)), s, {}), Rational(1));
  EXPECT_EQ(EvalTerm(MLessEq(MConst(3), MConst(3)), s, {}), Rational(1));
  EXPECT_EQ(EvalTerm(MNot(MConst(0)), s, {}), Rational(1));
  EXPECT_EQ(EvalTerm(MAnd(MConst(1), MConst(0)), s, {}), Rational(0));
  EXPECT_EQ(EvalTerm(MOr(MConst(1), MConst(0)), s, {}), Rational(1));
  EXPECT_EQ(
      EvalTerm(MIte(MConst(1), MConst(10), MConst(20)), s, {}),
      Rational(10));
  EXPECT_EQ(
      EvalTerm(MIte(MConst(0), MConst(10), MConst(20)), s, {}),
      Rational(20));
}

TEST(MTermTest, FunctionApplicationWithAssignment) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  MTermPtr term = MApply("salary", {Term::Var("x")});
  EXPECT_EQ(EvalTerm(term, db.observed(), {2}), Rational(300));
  EXPECT_EQ(EvalTerm(MApply("salary", {Term::Const(1)}), db.observed(), {}),
            Rational(200));
}

TEST(MTermTest, AggregatesOverUniverse) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  const FunctionalStructure& s = db.observed();
  MTermPtr salary_y = MApply("salary", {Term::Var("y")});
  EXPECT_EQ(EvalTerm(MSum("y", salary_y), s, {}), Rational(1000));
  EXPECT_EQ(EvalTerm(MMin("y", salary_y), s, {}), Rational(100));
  EXPECT_EQ(EvalTerm(MMax("y", salary_y), s, {}), Rational(400));
  EXPECT_EQ(EvalTerm(MAvg("y", salary_y), s, {}), Rational(250));
  // count of elements with salary > 150.
  EXPECT_EQ(
      EvalTerm(MCount("y", MLess(MConst(150), salary_y)), s, {}),
      Rational(3));
  // Π over a small term.
  EXPECT_EQ(EvalTerm(MProd("y", MApply("dept", {Term::Var("y")})), s, {}),
            Rational(4));
}

TEST(MTermTest, GroupedAggregateWithFreeVariable) {
  // SELECT SUM(salary) GROUP BY dept, as a term with free variable x:
  // Σ_y (dept(y) == dept(x)) * salary(y).
  UnreliableFunctionalDatabase db = PayrollDatabase();
  MTermPtr term =
      MSum("y", MMul(MEq(MApply("dept", {Term::Var("y")}),
                         MApply("dept", {Term::Var("x")})),
                     MApply("salary", {Term::Var("y")})));
  EXPECT_EQ(term->FreeVariables(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(EvalTerm(term, db.observed(), {0}), Rational(300));
  EXPECT_EQ(EvalTerm(term, db.observed(), {3}), Rational(700));
}

TEST(MetafiniteReliabilityTest, CertainDatabasePerfectlyReliable) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  MTermPtr query = MSum("y", MApply("salary", {Term::Var("y")}));
  FunctionalReliabilityReport report =
      *ExactFunctionalReliability(query, db);
  EXPECT_TRUE(report.expected_error.IsZero());
  EXPECT_TRUE(report.reliability.IsOne());
}

TEST(MetafiniteReliabilityTest, SumQueryHandComputed) {
  // salary(0) is 100 w.p. 2/3 or 150 w.p. 1/3; Σ salary differs from the
  // observed 1000 exactly when the actual value is 150: H = 1/3.
  UnreliableFunctionalDatabase db = PayrollDatabase();
  int salary = *db.vocabulary().FindFunction("salary");
  ASSERT_TRUE(db.SetDistribution(
                    FunctionEntry{salary, {0}},
                    TwoPoint(Rational(100), Rational(2, 3), Rational(150)))
                  .ok());
  MTermPtr query = MSum("y", MApply("salary", {Term::Var("y")}));
  FunctionalReliabilityReport report =
      *ExactFunctionalReliability(query, db);
  EXPECT_EQ(report.expected_error, Rational(1, 3));
  EXPECT_EQ(report.reliability, Rational(2, 3));
}

TEST(MetafiniteReliabilityTest, MaxQueryAbsorbsIrrelevantNoise) {
  // max salary is 400; noise on salary(0) between 100 and 150 never
  // changes the maximum.
  UnreliableFunctionalDatabase db = PayrollDatabase();
  int salary = *db.vocabulary().FindFunction("salary");
  ASSERT_TRUE(db.SetDistribution(
                    FunctionEntry{salary, {0}},
                    TwoPoint(Rational(100), Rational(1, 2), Rational(150)))
                  .ok());
  MTermPtr query = MMax("y", MApply("salary", {Term::Var("y")}));
  FunctionalReliabilityReport report =
      *ExactFunctionalReliability(query, db);
  EXPECT_TRUE(report.reliability.IsOne());
}

TEST(MetafiniteReliabilityTest, QuantifierFreeMatchesExact) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  int salary = *db.vocabulary().FindFunction("salary");
  int dept = *db.vocabulary().FindFunction("dept");
  ASSERT_TRUE(db.SetDistribution(
                    FunctionEntry{salary, {0}},
                    TwoPoint(Rational(100), Rational(2, 3), Rational(150)))
                  .ok());
  ASSERT_TRUE(db.SetDistribution(
                    FunctionEntry{salary, {2}},
                    TwoPoint(Rational(300), Rational(1, 2), Rational(50)))
                  .ok());
  ASSERT_TRUE(db.SetDistribution(
                    FunctionEntry{dept, {1}},
                    TwoPoint(Rational(1), Rational(4, 5), Rational(2)))
                  .ok());

  const MTermPtr queries[] = {
      MApply("salary", {Term::Var("x")}),
      MLess(MConst(120), MApply("salary", {Term::Var("x")})),
      MAdd(MApply("salary", {Term::Var("x")}),
           MApply("dept", {Term::Var("x")})),
      MMul(MEq(MApply("dept", {Term::Var("x")}),
               MApply("dept", {Term::Var("z")})),
           MApply("salary", {Term::Var("x")})),
      MApply("salary", {Term::Const(0)}),
  };
  for (const MTermPtr& query : queries) {
    FunctionalReliabilityReport fast =
        *QuantifierFreeFunctionalReliability(query, db);
    FunctionalReliabilityReport exact = *ExactFunctionalReliability(query, db);
    EXPECT_EQ(fast.expected_error, exact.expected_error)
        << query->ToString();
    EXPECT_EQ(fast.reliability, exact.reliability) << query->ToString();
  }
}

TEST(MetafiniteReliabilityTest, QuantifierFreeRejectsAggregates) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  MTermPtr query = MSum("y", MApply("salary", {Term::Var("y")}));
  EXPECT_FALSE(QuantifierFreeFunctionalReliability(query, db).ok());
}

TEST(MetafiniteReliabilityTest, MonteCarloConvergesToExact) {
  UnreliableFunctionalDatabase db = PayrollDatabase();
  int salary = *db.vocabulary().FindFunction("salary");
  ASSERT_TRUE(db.SetDistribution(
                    FunctionEntry{salary, {0}},
                    TwoPoint(Rational(100), Rational(2, 3), Rational(150)))
                  .ok());
  ASSERT_TRUE(db.SetDistribution(
                    FunctionEntry{salary, {1}},
                    TwoPoint(Rational(200), Rational(1, 2), Rational(20)))
                  .ok());
  MTermPtr query = MAvg("y", MApply("salary", {Term::Var("y")}));
  double exact = ExactFunctionalReliability(query, db)
                     ->reliability.ToDouble();
  FunctionalMcResult mc = *McFunctionalReliability(query, db, 20000, 5);
  EXPECT_NEAR(mc.estimate, exact, 0.02);
}

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

TEST(MTermTest, NestedAggregates) {
  // Σ_x Σ_y (salary(x) == salary(y)): counts equal-salary pairs. All
  // salaries distinct -> exactly the n diagonal pairs.
  UnreliableFunctionalDatabase db = PayrollDatabase();
  MTermPtr pairs = MSum(
      "x", MSum("y", MEq(MApply("salary", {Term::Var("x")}),
                         MApply("salary", {Term::Var("y")}))));
  EXPECT_EQ(EvalTerm(pairs, db.observed(), {}), Rational(4));
}

TEST(MTermTest, AggregateVariableShadowing) {
  // Σ_x (dept(x) + Σ_x salary(x)): the inner x shadows the outer one, so
  // the inner sum is the same constant (1000) for every outer x.
  UnreliableFunctionalDatabase db = PayrollDatabase();
  MTermPtr term =
      MSum("x", MAdd(MApply("dept", {Term::Var("x")}),
                     MSum("x", MApply("salary", {Term::Var("x")}))));
  // Σ dept = 1+1+2+2 = 6; plus 4 * 1000.
  EXPECT_EQ(EvalTerm(term, db.observed(), {}), Rational(4006));
}

TEST(MTermTest, CountWithCompositeGuard) {
  // |{ y : dept(y) == 1 && salary(y) > 150 }| = 1 (element 1).
  UnreliableFunctionalDatabase db = PayrollDatabase();
  MTermPtr term = MCount(
      "y", MAnd(MEq(MApply("dept", {Term::Var("y")}), MConst(1)),
                MLess(MConst(150), MApply("salary", {Term::Var("y")}))));
  EXPECT_EQ(EvalTerm(term, db.observed(), {}), Rational(1));
}

TEST(MetafiniteReliabilityTest, NestedAggregateReliability) {
  // Reliability of the min-salary query under a two-point perturbation
  // that sometimes drops below the current minimum.
  UnreliableFunctionalDatabase db = PayrollDatabase();
  int salary = *db.vocabulary().FindFunction("salary");
  ASSERT_TRUE(db.SetDistribution(
                    FunctionEntry{salary, {3}},
                    TwoPoint(Rational(400), Rational(3, 5), Rational(50)))
                  .ok());
  MTermPtr query = MMin("y", MApply("salary", {Term::Var("y")}));
  FunctionalReliabilityReport report =
      *ExactFunctionalReliability(query, db);
  // min is 100 unless salary(3) drops to 50 (probability 2/5).
  EXPECT_EQ(report.expected_error, Rational(2, 5));
}

}  // namespace
}  // namespace qrel
