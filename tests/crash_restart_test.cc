// Crash-restart drills against the real qrel_server binary. For every
// registered crash-after-vfs.* site: fork/exec a server with --state-dir,
// arm the site over the wire (FAULT verb), issue a journaled query, watch
// the process die by SIGKILL at that exact syscall boundary, restart on
// the same state dir, and assert the contract of ISSUE 9 — the manifest
// is intact, no temp file leaked, and a retrying client gets a
// bit-identical answer. Plus: SIGTERM still drains to exit 0, and
// QueryWithRetry rides out a full server restart on the same port.
//
// The server binary path is injected by CMake as QREL_SERVER_BINARY.

#include <dirent.h>
#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/net/client.h"
#include "qrel/net/manifest.h"
#include "qrel/util/status.h"

#ifndef QREL_SERVER_BINARY
#error "QREL_SERVER_BINARY must point at the qrel_server executable"
#endif

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
absent E 2 0 err=1/5
)";

constexpr char kQuery[] = "exists x y . E(x,y) & S(y)";

// Every crash trigger the vfs registers: SIGKILL fires after the
// corresponding syscall succeeded, so each drill leaves the filesystem in
// the exact state a power cut at that boundary would.
constexpr const char* kCrashSites[] = {
    "crash-after-vfs.open_write", "crash-after-vfs.write",
    "crash-after-vfs.fsync",      "crash-after-vfs.close",
    "crash-after-vfs.rename",     "crash-after-vfs.fsync_dir",
    "crash-after-vfs.unlink",
};

// One forked qrel_server incarnation. Start() execs the binary, captures
// stdout, and blocks until the "listening  : host:port" banner appears.
class ServerProcess {
 public:
  ~ServerProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      (void)WaitExit();
    }
    CloseStdout();
  }

  Status Start(const std::vector<std::string>& args) {
    int fds[2];
    if (::pipe(fds) != 0) {
      return Status(StatusCode::kInternal, "pipe failed");
    }
    pid_ = ::fork();
    if (pid_ < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return Status(StatusCode::kInternal, "fork failed");
    }
    if (pid_ == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(QREL_SERVER_BINARY));
      for (const std::string& arg : args) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(QREL_SERVER_BINARY, argv.data());
      ::_exit(127);
    }
    ::close(fds[1]);
    stdout_fd_ = fds[0];
    return WaitForListening();
  }

  int port() const { return port_; }
  pid_t pid() const { return pid_; }

  void Signal(int signum) { ::kill(pid_, signum); }

  // Reaps the child and returns the raw waitpid status.
  int WaitExit() {
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    pid_ = -1;
    return status;
  }

 private:
  void CloseStdout() {
    if (stdout_fd_ >= 0) {
      ::close(stdout_fd_);
      stdout_fd_ = -1;
    }
  }

  Status WaitForListening() {
    std::string seen;
    // Generous wall: sanitizer builds start slowly.
    for (int spins = 0; spins < 300; ++spins) {
      struct pollfd pfd = {stdout_fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, 100);
      if (ready < 0 && errno != EINTR) {
        break;
      }
      if (ready <= 0) {
        continue;
      }
      char buf[1024];
      ssize_t n = ::read(stdout_fd_, buf, sizeof(buf));
      if (n <= 0) {
        return Status(StatusCode::kUnavailable,
                      "server exited before listening; output:\n" + seen);
      }
      seen.append(buf, static_cast<size_t>(n));
      size_t at = seen.find("listening  : ");
      if (at == std::string::npos) {
        continue;
      }
      size_t eol = seen.find('\n', at);
      if (eol == std::string::npos) {
        continue;  // banner not complete yet
      }
      std::string line = seen.substr(at, eol - at);
      size_t colon = line.rfind(':');
      size_t space = line.find(' ', colon);
      if (colon == std::string::npos) {
        return Status(StatusCode::kInternal, "unparseable banner: " + line);
      }
      port_ = std::atoi(line.substr(colon + 1, space - colon - 1).c_str());
      if (port_ <= 0) {
        return Status(StatusCode::kInternal, "bad port in banner: " + line);
      }
      return Status::Ok();
    }
    return Status(StatusCode::kDeadlineExceeded,
                  "no listening banner within 30s; output:\n" + seen);
  }

  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  int port_ = -1;
};

class CrashRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/crash_restart_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0755);
    udb_path_ = dir_ + "/data.udb";
    std::ofstream(udb_path_) << kUdbText;
  }

  void TearDown() override {
    // Best-effort sweep; asserts about leftovers live in the tests.
    for (const std::string& name : Listing()) {
      ::unlink((dir_ + "/" + name).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  std::vector<std::string> BaseArgs(int port) const {
    return {
        "db1=" + udb_path_,
        "--state-dir=" + dir_,
        "--port=" + std::to_string(port),
        "--workers=1",
        "--queue=4",
        "--checkpoint-interval-ms=0",
        "--enable-fault-verb",
    };
  }

  std::vector<std::string> RestartArgs(int port) const {
    // No database argument: the manifest is the only source of truth.
    return {
        "--state-dir=" + dir_,
        "--port=" + std::to_string(port),
        "--workers=1",
        "--queue=4",
        "--checkpoint-interval-ms=0",
        "--enable-fault-verb",
    };
  }

  std::vector<std::string> Listing() const {
    std::vector<std::string> names;
    if (DIR* dir = ::opendir(dir_.c_str())) {
      while (struct dirent* entry = ::readdir(dir)) {
        std::string name = entry->d_name;
        if (name != "." && name != "..") {
          names.push_back(name);
        }
      }
      ::closedir(dir);
    }
    return names;
  }

  std::string dir_;
  std::string udb_path_;
};

TEST_F(CrashRestartTest, EveryCrashSiteSurvivesKillAndRetriesIdentically) {
  for (const char* site : kCrashSites) {
    SCOPED_TRACE(site);

    ServerProcess first;
    ASSERT_TRUE(first.Start(BaseArgs(0)).ok());
    QrelClient client;
    ASSERT_TRUE(client.Connect(first.port(), 5000).ok());

    // Baseline from this incarnation: the answer the retry must reproduce
    // bit-for-bit.
    RequestOptions options;
    options.db = "db1";
    StatusOr<Response> baseline = client.Query(kQuery, options);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_TRUE(baseline->ok()) << baseline->status.ToString();
    const std::string expect_value =
        baseline->Field("exact_value").value_or("");
    const std::string expect_fp =
        baseline->Field("db_fingerprint").value_or("");
    ASSERT_FALSE(expect_value.empty());

    // Arm the crash trigger over the wire, then issue the journaled query.
    // The journal write / removal is the first filesystem activity of the
    // request, so the SIGKILL lands mid-request: the client sees a torn
    // transport, never a response.
    StatusOr<Response> armed = client.Fault(site);
    ASSERT_TRUE(armed.ok()) << armed.status().ToString();
    ASSERT_TRUE(armed->ok()) << armed->status.ToString();

    options.idempotency_key = "drill-1";
    StatusOr<Response> torn = client.Query(kQuery, options);
    ASSERT_FALSE(torn.ok()) << "query survived an armed " << site;

    int status = first.WaitExit();
    ASSERT_TRUE(WIFSIGNALED(status)) << "server exited instead of crashing";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Restart on the same state dir, database args omitted: recovery must
    // replay the manifest.
    ServerProcess second;
    ASSERT_TRUE(second.Start(RestartArgs(0)).ok());

    // The manifest survived the crash (old or new version, but readable)...
    StatusOr<CatalogManifest> manifest =
        ReadManifestFile(dir_ + "/catalog.manifest");
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    ASSERT_EQ(manifest->entries.size(), 1u);
    EXPECT_EQ(manifest->entries[0].name, "db1");

    // ...and the retry, same query + same idempotency key, reproduces the
    // answer bit-identically.
    QrelClient retry;
    ASSERT_TRUE(retry.Connect(second.port(), 5000).ok());
    StatusOr<Response> replay = retry.QueryWithRetry(kQuery, options);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    ASSERT_TRUE(replay->ok()) << replay->status.ToString();
    EXPECT_EQ(replay->Field("exact_value").value_or(""), expect_value);
    EXPECT_EQ(replay->Field("db_fingerprint").value_or(""), expect_fp);
    EXPECT_EQ(replay->Field("idempotency_key").value_or(""), "drill-1");

    // Zero orphaned temps after recovery: the startup sweep reaped
    // whatever the crash left mid-rename.
    for (const std::string& name : Listing()) {
      EXPECT_EQ(name.find(".tmp."), std::string::npos)
          << "orphaned temp survived recovery after " << site << ": " << name;
    }

    second.Signal(SIGTERM);
    int drained = second.WaitExit();
    ASSERT_TRUE(WIFEXITED(drained));
    EXPECT_EQ(WEXITSTATUS(drained), 0);
  }
}

TEST_F(CrashRestartTest, SigtermDrainsToExitZero) {
  ServerProcess server;
  ASSERT_TRUE(server.Start(BaseArgs(0)).ok());
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port(), 5000).ok());
  RequestOptions options;
  options.db = "db1";
  StatusOr<Response> answer = client.Query(kQuery, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_TRUE(answer->ok());

  server.Signal(SIGTERM);
  int status = server.WaitExit();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST_F(CrashRestartTest, QueryWithRetryReconnectsAcrossRestart) {
  ServerProcess first;
  ASSERT_TRUE(first.Start(BaseArgs(0)).ok());
  const int port = first.port();

  QrelClient client;
  ASSERT_TRUE(client.Connect(port, 5000).ok());
  RequestOptions options;
  options.db = "db1";
  StatusOr<Response> before = client.Query(kQuery, options);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_TRUE(before->ok());

  // Hard-kill the server; the client's connection is now a corpse.
  first.Signal(SIGKILL);
  int status = first.WaitExit();
  ASSERT_TRUE(WIFSIGNALED(status));

  // Bring a new incarnation up on the same port (SO_REUSEADDR), manifest
  // recovery repopulating the catalog.
  ServerProcess second;
  ASSERT_TRUE(second.Start(RestartArgs(port)).ok());
  ASSERT_EQ(second.port(), port);

  // The same client object retries: the dead connection surfaces as a
  // retryable UNAVAILABLE, QueryWithRetry reconnects, and the recovered
  // server answers identically.
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.total_deadline_ms = 20000;
  options.idempotency_key = "reconnect-1";
  StatusOr<Response> after = client.QueryWithRetry(kQuery, options, policy);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_TRUE(after->ok()) << after->status.ToString();
  EXPECT_EQ(after->Field("exact_value").value_or(""),
            before->Field("exact_value").value_or("x"));
  EXPECT_EQ(after->Field("db_fingerprint").value_or(""),
            before->Field("db_fingerprint").value_or("x"));

  second.Signal(SIGTERM);
  int drained = second.WaitExit();
  ASSERT_TRUE(WIFEXITED(drained));
  EXPECT_EQ(WEXITSTATUS(drained), 0);
}

}  // namespace
}  // namespace qrel
