#include "qrel/logic/grounding.h"

#include <memory>

#include <gtest/gtest.h>

#include "qrel/logic/eval.h"
#include "qrel/logic/parser.h"

namespace qrel {
namespace {

// Builds the database of unreliable_database_test with configurable errors.
UnreliableDatabase SmallDatabase() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("S", 1);
  Structure observed(vocabulary, 3);
  observed.AddFact(0, {0, 1});
  observed.AddFact(0, {1, 2});
  observed.AddFact(1, {0});
  return UnreliableDatabase(std::move(observed));
}

PrenexExistential MustPrenex(const std::string& text) {
  StatusOr<FormulaPtr> formula = ParseFormula(text);
  EXPECT_TRUE(formula.ok()) << formula.status().ToString();
  StatusOr<PrenexExistential> prenex = ToPrenexExistential(*formula);
  EXPECT_TRUE(prenex.ok()) << prenex.status().ToString();
  return std::move(prenex).value();
}

// Evaluates the ground DNF in a world (flips bitset over entry ids).
bool EvalGroundDnf(const GroundDnf& dnf, const UnreliableDatabase& db,
                   const World& world) {
  if (dnf.certainly_true) return true;
  for (const std::vector<GroundLiteral>& term : dnf.terms) {
    bool all = true;
    for (const GroundLiteral& literal : term) {
      const GroundAtom& atom = db.model().atom(literal.entry);
      bool observed = db.observed().AtomTrue(atom.relation, atom.args);
      bool actual = world.Flipped(literal.entry) ? !observed : observed;
      if (actual != literal.positive) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(GroundingTest, CertainDatabaseYieldsConstantFormula) {
  UnreliableDatabase db = SmallDatabase();
  // ∃x∃y E(x,y) holds in the (certain) observed database.
  GroundDnf dnf =
      *GroundExistential(MustPrenex("exists x y . E(x, y)"), db, {});
  EXPECT_TRUE(dnf.certainly_true);

  // ∃x S(x) & E(x, x): no witness and nothing uncertain -> empty DNF.
  GroundDnf none =
      *GroundExistential(MustPrenex("exists x . S(x) & E(x, x)"), db, {});
  EXPECT_FALSE(none.certainly_true);
  EXPECT_TRUE(none.terms.empty());
}

TEST(GroundingTest, UncertainAtomsBecomeVariables) {
  UnreliableDatabase db = SmallDatabase();
  int s1 = db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));
  int s2 = db.SetErrorProbability(GroundAtom{1, {2}}, Rational(1, 3));

  // ∃x S(x) — S(0) is certainly true, so the query is certainly true.
  GroundDnf always = *GroundExistential(MustPrenex("exists x . S(x)"), db, {});
  EXPECT_TRUE(always.certainly_true);

  // ∃x (S(x) & x != #0): only the uncertain S(1), S(2) matter.
  GroundDnf dnf = *GroundExistential(
      MustPrenex("exists x . S(x) & x != #0"), db, {});
  EXPECT_FALSE(dnf.certainly_true);
  ASSERT_EQ(dnf.terms.size(), 2u);
  EXPECT_EQ(dnf.Width(), 1);
  EXPECT_EQ(dnf.terms[0][0].entry, s1);
  EXPECT_TRUE(dnf.terms[0][0].positive);
  EXPECT_EQ(dnf.terms[1][0].entry, s2);
}

TEST(GroundingTest, NegativeLiteralsSupported) {
  UnreliableDatabase db = SmallDatabase();
  int s0 = db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  GroundDnf dnf =
      *GroundExistential(MustPrenex("exists x . !S(x) & x = #0"), db, {});
  ASSERT_EQ(dnf.terms.size(), 1u);
  EXPECT_EQ(dnf.terms[0][0].entry, s0);
  EXPECT_FALSE(dnf.terms[0][0].positive);
}

TEST(GroundingTest, WidthIsIndependentOfDatabaseSize) {
  // ψ = ∃x∃y (E(x,y) & S(x) & S(y)) has width ≤ 3 whatever the database.
  PrenexExistential prenex =
      MustPrenex("exists x y . E(x, y) & S(x) & S(y)");
  for (int n : {3, 5, 8}) {
    auto vocabulary = std::make_shared<Vocabulary>();
    vocabulary->AddRelation("E", 2);
    vocabulary->AddRelation("S", 1);
    Structure observed(vocabulary, n);
    UnreliableDatabase db(std::move(observed));
    for (Element i = 0; i < n; ++i) {
      db.SetErrorProbability(GroundAtom{1, {i}}, Rational(1, 2));
      for (Element j = 0; j < n; ++j) {
        db.SetErrorProbability(GroundAtom{0, {i, j}}, Rational(1, 3));
      }
    }
    GroundDnf dnf = *GroundExistential(prenex, db, {});
    EXPECT_LE(dnf.Width(), 3) << n;
    // n^2 assignments, one term each (atoms all uncertain and distinct,
    // except x == y merging S(x), S(y)).
    EXPECT_EQ(dnf.terms.size(), static_cast<size_t>(n) * n);
  }
}

TEST(GroundingTest, FreeVariablesGroundedThroughAssignment) {
  UnreliableDatabase db = SmallDatabase();
  int s1 = db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));
  PrenexExistential prenex = MustPrenex("exists y . E(x, y) & S(y)");
  // x = 0: E(0,1) certain true, S(1) uncertain -> one unit term.
  GroundDnf dnf0 = *GroundExistential(prenex, db, {0});
  ASSERT_EQ(dnf0.terms.size(), 1u);
  EXPECT_EQ(dnf0.terms[0][0].entry, s1);
  // x = 2: no certain E(2,·) and no uncertain E -> false.
  GroundDnf dnf2 = *GroundExistential(prenex, db, {2});
  EXPECT_TRUE(dnf2.terms.empty());
  EXPECT_FALSE(dnf2.certainly_true);
}

TEST(GroundingTest, RejectsWrongAssignmentLength) {
  UnreliableDatabase db = SmallDatabase();
  PrenexExistential prenex = MustPrenex("exists y . E(x, y)");
  EXPECT_FALSE(GroundExistential(prenex, db, {}).ok());
  EXPECT_FALSE(GroundExistential(prenex, db, {0, 1}).ok());
}

TEST(GroundingTest, RejectsConstantOutsideUniverse) {
  UnreliableDatabase db = SmallDatabase();
  PrenexExistential prenex = MustPrenex("exists x . E(x, #7)");
  EXPECT_FALSE(GroundExistential(prenex, db, {}).ok());
}

TEST(GroundingTest, GroundDnfAgreesWithQueryOnEveryWorld) {
  // The grounded formula ψ'' must hold in a world iff ψ does (the
  // correctness claim inside Theorem 5.4), exhaustively over all worlds.
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 3));
  db.SetErrorProbability(GroundAtom{0, {2, 0}}, Rational(1, 2));
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {2}}, Rational(2, 5));

  for (const std::string text : {
           "exists x y . E(x, y) & S(y)",
           "exists x . S(x)",
           "exists x . !S(x)",
           "exists x y . E(x, y) & !S(x) & x != y",
           "exists x . (S(x) | !E(x, x)) & x = #2",
       }) {
    StatusOr<FormulaPtr> formula = ParseFormula(text);
    ASSERT_TRUE(formula.ok());
    PrenexExistential prenex = *ToPrenexExistential(*formula);
    GroundDnf dnf = *GroundExistential(prenex, db, {});
    CompiledQuery query =
        std::move(CompiledQuery::Compile(*formula, db.vocabulary())).value();
    db.ForEachWorld([&](const World& world, const Rational&) {
      WorldView view(db, world);
      EXPECT_EQ(EvalGroundDnf(dnf, db, world), query.Eval(view, {}))
          << text;
    });
  }
}

}  // namespace
}  // namespace qrel
