#include "qrel/prob/error_model.h"

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(ErrorModelTest, UnmentionedAtomsHaveZeroError) {
  ErrorModel model;
  EXPECT_TRUE(model.ErrorOf(GroundAtom{0, {1, 2}}).IsZero());
  EXPECT_EQ(model.entry_count(), 0);
}

TEST(ErrorModelTest, SetAndGet) {
  ErrorModel model;
  int id = model.SetError(GroundAtom{0, {1}}, Rational(1, 3));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(model.entry_count(), 1);
  EXPECT_EQ(model.error(id), Rational(1, 3));
  EXPECT_EQ(model.ErrorOf(GroundAtom{0, {1}}), Rational(1, 3));
  EXPECT_TRUE(model.atom(id) == (GroundAtom{0, {1}}));
}

TEST(ErrorModelTest, OverwriteKeepsId) {
  ErrorModel model;
  int id = model.SetError(GroundAtom{0, {1}}, Rational(1, 3));
  int same = model.SetError(GroundAtom{0, {1}}, Rational(2, 3));
  EXPECT_EQ(id, same);
  EXPECT_EQ(model.entry_count(), 1);
  EXPECT_EQ(model.error(id), Rational(2, 3));
}

TEST(ErrorModelTest, UncertainAndCertainPartition) {
  ErrorModel model;
  model.SetError(GroundAtom{0, {0}}, Rational(0));       // certain, no flip
  model.SetError(GroundAtom{0, {1}}, Rational(1, 2));    // uncertain
  model.SetError(GroundAtom{0, {2}}, Rational(1));       // certain flip
  model.SetError(GroundAtom{0, {3}}, Rational(999, 1000));  // uncertain

  EXPECT_EQ(model.UncertainEntries(), (std::vector<int>{1, 3}));
  EXPECT_EQ(model.CertainFlipEntries(), (std::vector<int>{2}));
}

}  // namespace
}  // namespace qrel
