#include "qrel/engine/engine.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "qrel/core/reliability.h"
#include "qrel/logic/parser.h"
#include "qrel/prob/text_format.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/run_context.h"

namespace qrel {
namespace {

constexpr char kUdb[] = R"(
universe 4
relation E 2
relation S 1
fact E 0 1
fact E 1 2
fact E 2 3
fact S 0 err=1/4
fact S 2 err=1/3
absent S 1 err=1/2
)";

ReliabilityEngine MakeEngine() {
  StatusOr<UnreliableDatabase> db = ParseUdb(kUdb);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return ReliabilityEngine(std::move(db).value());
}

TEST(EngineTest, QuantifierFreeUsesProp31) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport report = *engine.Run("S(x)");
  EXPECT_EQ(report.query_class, QueryClass::kQuantifierFree);
  EXPECT_TRUE(report.is_exact);
  EXPECT_NE(report.method.find("Prop 3.1"), std::string::npos);
  // H = 1/4 + 1/2 + 1/3 = 13/12; R = 1 - (13/12)/4 = 35/48.
  ASSERT_TRUE(report.exact_reliability.has_value());
  EXPECT_EQ(*report.exact_reliability, Rational(35, 48));
}

TEST(EngineTest, SmallSupportUsesExactEnumeration) {
  ReliabilityEngine engine = MakeEngine();
  // The S self-join makes the query unsafe, so it lands on enumeration.
  EngineReport report =
      *engine.Run("exists x . exists y . S(x) & E(x, y) & S(y)");
  EXPECT_TRUE(report.is_exact);
  EXPECT_NE(report.method.find("Thm 4.2"), std::string::npos);
}

TEST(EngineTest, ForcedApproximationUsesCor55ForExistential) {
  ReliabilityEngine engine = MakeEngine();
  EngineOptions options;
  options.force_approximate = true;
  options.seed = 7;
  EngineReport report = *engine.Run("exists x . S(x)", options);
  EXPECT_FALSE(report.is_exact);
  EXPECT_NE(report.method.find("Cor 5.5"), std::string::npos);
  // Compare against the exact path.
  EngineReport exact = *engine.Run("exists x . S(x)");
  EXPECT_NEAR(report.reliability, exact.reliability, 3 * options.epsilon);
}

TEST(EngineTest, ForcedApproximationUsesThm512ForGeneralQueries) {
  ReliabilityEngine engine = MakeEngine();
  EngineOptions options;
  options.force_approximate = true;
  options.epsilon = 0.05;
  options.delta = 0.05;
  options.seed = 11;
  EngineReport report =
      *engine.Run("forall x . S(x) -> (exists y . E(x, y))", options);
  EXPECT_FALSE(report.is_exact);
  EXPECT_NE(report.method.find("Thm 5.12"), std::string::npos);
  EngineReport exact =
      *engine.Run("forall x . S(x) -> (exists y . E(x, y))");
  EXPECT_NEAR(report.reliability, exact.reliability, 3 * options.epsilon);
}

TEST(EngineTest, ObservedAnswersIncluded) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport report = *engine.Run("S(x)");
  ASSERT_TRUE(report.observed_answers.has_value());
  EXPECT_EQ(*report.observed_answers,
            (std::vector<Tuple>{{0}, {2}}));

  EngineOptions options;
  options.include_observed_answers = false;
  report = *engine.Run("S(x)", options);
  EXPECT_FALSE(report.observed_answers.has_value());
}

TEST(EngineTest, ParseErrorsPropagate) {
  ReliabilityEngine engine = MakeEngine();
  EXPECT_FALSE(engine.Run("S(x").ok());
  EXPECT_FALSE(engine.Run("Zap(x)").ok());
}

TEST(EngineTest, ConflictingForcesRejected) {
  ReliabilityEngine engine = MakeEngine();
  EngineOptions options;
  options.force_exact = true;
  options.force_approximate = true;
  EXPECT_FALSE(engine.Run("S(x)", options).ok());
}

TEST(EngineTest, ClassReporting) {
  ReliabilityEngine engine = MakeEngine();
  EXPECT_EQ(engine.Run("S(x) & E(x, y)")->query_class,
            QueryClass::kQuantifierFree);
  EXPECT_EQ(engine.Run("exists x . S(x) & E(x, x)")->query_class,
            QueryClass::kSafeConjunctive);
  EXPECT_EQ(engine.Run("exists x . exists y . S(x) & E(x, y) & S(y)")
                ->query_class,
            QueryClass::kConjunctive);
  EXPECT_EQ(engine.Run("exists x . S(x) | E(x, x)")->query_class,
            QueryClass::kExistential);
  EXPECT_EQ(engine.Run("forall x . S(x)")->query_class,
            QueryClass::kUniversal);
  EXPECT_EQ(engine.Run("forall x . exists y . E(x, y)")->query_class,
            QueryClass::kGeneralFirstOrder);
}

// A database whose exact enumeration is hopeless on a short deadline:
// 24 uncertain atoms = 2^24 possible worlds.
ReliabilityEngine MakeLargeEngine() {
  std::string udb = "universe 12\nrelation S 1\nrelation T 1\n";
  for (int i = 0; i < 12; ++i) {
    udb += "fact S " + std::to_string(i) + " err=1/3\n";
    udb += "fact T " + std::to_string(i) + " err=1/4\n";
  }
  StatusOr<UnreliableDatabase> db = ParseUdb(udb);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return ReliabilityEngine(std::move(db).value());
}

TEST(EngineBudgetTest, DeadlineDegradesExactPathToSampling) {
  ReliabilityEngine engine = MakeLargeEngine();
  RunContext ctx =
      RunContext::WithDeadline(std::chrono::milliseconds(10));
  EngineOptions options;
  options.run_context = &ctx;
  // Large enough to admit the 2^24-world instance onto the exact rung.
  options.max_exact_worlds = uint64_t{1} << 32;
  options.seed = 5;
  StatusOr<EngineReport> report =
      engine.Run("exists x . exists y . S(x) & T(x) & T(y)", options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_FALSE(report->degradation_reason.empty());
  EXPECT_FALSE(report->is_exact);
  EXPECT_EQ(report->method.find("Thm 4.2"), std::string::npos)
      << report->method;
  EXPECT_GT(report->samples, 0u);
  EXPECT_GT(report->budget_spent, 0u);
  EXPECT_GE(report->reliability, 0.0);
  EXPECT_LE(report->reliability, 1.0);
  // The degraded estimate rests on fewer samples than the (ε, δ) plan and
  // must say what it actually guarantees.
  EXPECT_TRUE(report->partial);
  ASSERT_TRUE(report->achieved_epsilon.has_value());
  EXPECT_GT(*report->achieved_epsilon, 0.0);
  ASSERT_TRUE(report->achieved_delta.has_value());
  EXPECT_EQ(*report->achieved_delta, options.delta);
}

TEST(EngineBudgetTest, WorkBudgetDegradesExactPathToSampling) {
  ReliabilityEngine engine = MakeLargeEngine();
  RunContext ctx = RunContext::WithWorkBudget(5000);
  EngineOptions options;
  options.run_context = &ctx;
  options.max_exact_worlds = uint64_t{1} << 32;
  StatusOr<EngineReport> report =
      engine.Run("exists x . exists y . S(x) & T(x) & T(y)", options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_NE(report->degradation_reason.find("RESOURCE_EXHAUSTED"),
            std::string::npos)
      << report->degradation_reason;
  EXPECT_FALSE(report->is_exact);
  EXPECT_GE(report->budget_spent, 5000u);
}

TEST(EngineBudgetTest, NoDegradeSurfacesTheBudgetError) {
  ReliabilityEngine engine = MakeLargeEngine();
  RunContext ctx =
      RunContext::WithDeadline(std::chrono::milliseconds(10));
  EngineOptions options;
  options.run_context = &ctx;
  options.max_exact_worlds = uint64_t{1} << 32;
  options.degrade_on_budget = false;
  StatusOr<EngineReport> report =
      engine.Run("exists x . exists y . S(x) & T(x) & T(y)", options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(EngineBudgetTest, ForceExactRefusesToDegrade) {
  ReliabilityEngine engine = MakeLargeEngine();
  RunContext ctx = RunContext::WithWorkBudget(1000);
  EngineOptions options;
  options.run_context = &ctx;
  options.force_exact = true;
  StatusOr<EngineReport> report =
      engine.Run("exists x . exists y . S(x) & T(x) & T(y)", options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineBudgetTest, ZeroBudgetFailsCleanlyAtEntry) {
  ReliabilityEngine engine = MakeEngine();
  RunContext ctx = RunContext::WithWorkBudget(0);
  EngineOptions options;
  options.run_context = &ctx;
  StatusOr<EngineReport> report = engine.Run("S(x)", options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.work_spent(), 0u);
}

TEST(EngineBudgetTest, CancellationMidSamplingReturnsCancelled) {
  ReliabilityEngine engine = MakeEngine();
  RunContext ctx;  // unlimited: only cancellation can stop it
  EngineOptions options;
  options.run_context = &ctx;
  options.force_approximate = true;
  // Far more samples than the canceller allows to complete.
  options.fixed_samples = uint64_t{1} << 40;
  std::thread canceller([&ctx] {
    while (ctx.work_spent() < 10000) {
      std::this_thread::yield();
    }
    ctx.RequestCancellation();
  });
  StatusOr<EngineReport> report =
      engine.Run("exists x . S(x)", options);
  canceller.join();
  // Cancellation must surface as kCancelled — never a degraded or
  // truncated partial result.
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
  EXPECT_GE(ctx.work_spent(), 10000u);
}

TEST(EngineBudgetTest, GenerousEnvelopeLeavesResultExact) {
  ReliabilityEngine engine = MakeEngine();
  RunContext ctx = RunContext::WithWorkBudget(uint64_t{1} << 30);
  ctx.SetDeadline(std::chrono::hours(1));
  EngineOptions options;
  options.run_context = &ctx;
  StatusOr<EngineReport> report = engine.Run("S(x)", options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->is_exact);
  EXPECT_FALSE(report->degraded);
  EXPECT_FALSE(report->partial);
  EXPECT_GT(report->budget_spent, 0u);
  EXPECT_EQ(*report->exact_reliability, Rational(35, 48));
}

TEST(EngineTest, ExactAndApproximatePathsAgreeAcrossQueries) {
  ReliabilityEngine engine = MakeEngine();
  for (const std::string text : {
           "exists x . S(x)",
           "exists x y . E(x, y) & S(y)",
           "forall x . S(x) | !S(x)",
       }) {
    EngineReport exact = *engine.Run(text);
    ASSERT_TRUE(exact.is_exact) << text;
    EngineOptions options;
    options.force_approximate = true;
    options.epsilon = 0.04;
    options.delta = 0.02;
    options.seed = 1234;
    EngineReport approx = *engine.Run(text, options);
    EXPECT_NEAR(approx.reliability, exact.reliability, 3 * options.epsilon)
        << text;
  }
}

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

constexpr char kTcProgram[] =
    "Path(x, y) :- E(x, y).\n"
    "Path(x, z) :- Path(x, y), E(y, z).";

TEST(EngineDatalogTest, ExactPathReliability) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport report = *engine.RunDatalog(kTcProgram, "Path");
  EXPECT_TRUE(report.is_exact);
  EXPECT_NE(report.method.find("Datalog"), std::string::npos);
  ASSERT_TRUE(report.observed_answers.has_value());
  // Chain 0->1->2->3: six reachable pairs.
  EXPECT_EQ(report.observed_answers->size(), 6u);
  EXPECT_TRUE(report.exact_reliability.has_value());
}

TEST(EngineDatalogTest, ApproximatePathMatchesExact) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport exact = *engine.RunDatalog(kTcProgram, "Path");
  EngineOptions options;
  options.force_approximate = true;
  options.epsilon = 0.05;
  options.delta = 0.05;
  options.seed = 99;
  options.fixed_samples = 30000;  // the derived bound is ~4e7 samples here
  EngineReport approx = *engine.RunDatalog(kTcProgram, "Path", options);
  EXPECT_FALSE(approx.is_exact);
  EXPECT_NEAR(approx.reliability, exact.reliability, 3 * options.epsilon);
}

TEST(EngineDatalogTest, WorkBudgetDegradesToPaddedEstimator) {
  ReliabilityEngine engine = MakeEngine();
  // Far too little for 8 worlds' worth of exact enumeration.
  RunContext ctx = RunContext::WithWorkBudget(64);
  EngineOptions options;
  options.run_context = &ctx;
  options.fixed_samples = 50;
  StatusOr<EngineReport> report =
      engine.RunDatalog(kTcProgram, "Path", options);
  if (report.ok() && report->is_exact) {
    // The budget happened to cover the exact rung; nothing to assert.
    GTEST_SKIP() << "budget covered exact enumeration";
  }
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_NE(report->method.find("Thm 5.12"), std::string::npos)
      << report->method;
  EXPECT_GE(report->budget_spent, 64u);
}

TEST(EngineDatalogTest, ErrorsPropagate) {
  ReliabilityEngine engine = MakeEngine();
  EXPECT_FALSE(engine.RunDatalog("Path(x, y) :-", "Path").ok());
  EXPECT_FALSE(engine.RunDatalog(kTcProgram, "Nope").ok());
  EXPECT_FALSE(
      engine.RunDatalog("P(x) :- Zap(x).", "P").ok());
}

TEST(EngineAnalysisTest, AnalysisErrorsFailBeforeAnyBudgetCharge) {
  ReliabilityEngine engine = MakeEngine();
  RunContext ctx = RunContext::WithWorkBudget(1000);
  EngineOptions options;
  options.run_context = &ctx;

  StatusOr<EngineReport> unknown = engine.Run("Zap(x)", options);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // The message names the stable check id and the source location.
  EXPECT_NE(unknown.status().message().find("unknown-predicate"),
            std::string::npos);
  EXPECT_NE(unknown.status().message().find("at 0-"), std::string::npos);
  EXPECT_EQ(ctx.work_spent(), 0u);

  StatusOr<EngineReport> arity = engine.Run("E(x)", options);
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(arity.status().message().find("arity-mismatch"),
            std::string::npos);
  EXPECT_EQ(ctx.work_spent(), 0u);
}

TEST(EngineAnalysisTest, DatalogAnalysisErrorsFailBeforeAnyBudgetCharge) {
  ReliabilityEngine engine = MakeEngine();
  RunContext ctx = RunContext::WithWorkBudget(1000);
  EngineOptions options;
  options.run_context = &ctx;

  StatusOr<EngineReport> unsafe =
      engine.RunDatalog("P(x, y) :- S(x).", "P", options);
  ASSERT_FALSE(unsafe.ok());
  EXPECT_EQ(unsafe.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unsafe.status().message().find("unbound-head-variable"),
            std::string::npos);
  EXPECT_EQ(ctx.work_spent(), 0u);

  StatusOr<EngineReport> cyclic = engine.RunDatalog(
      "P(x) :- S(x), !Q(x).\nQ(x) :- S(x), !P(x).", "P", options);
  ASSERT_FALSE(cyclic.ok());
  EXPECT_NE(cyclic.status().message().find("unstratifiable-cycle"),
            std::string::npos);
  EXPECT_EQ(ctx.work_spent(), 0u);
}

TEST(EngineAnalysisTest, StaticallyFalseShortCircuitsWithoutSampling) {
  ReliabilityEngine engine = MakeEngine();
  RunContext ctx = RunContext::WithWorkBudget(1000);
  EngineOptions options;
  options.run_context = &ctx;
  EngineReport report = *engine.Run("exists x . S(x) & !S(x)", options);
  EXPECT_TRUE(report.is_exact);
  ASSERT_TRUE(report.exact_reliability.has_value());
  EXPECT_EQ(*report.exact_reliability, Rational::One());
  EXPECT_EQ(report.expected_error, 0.0);
  EXPECT_EQ(report.samples, 0u);
  EXPECT_NE(report.method.find("static analysis closed form"),
            std::string::npos);
  // Nothing was enumerated or sampled, so no work unit was charged.
  EXPECT_EQ(report.budget_spent, 0u);
  EXPECT_EQ(ctx.work_spent(), 0u);
}

TEST(EngineAnalysisTest, StaticallyTrueShortCircuitsWithAllAnswers) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport report = *engine.Run("S(x) | !S(x)");
  EXPECT_TRUE(report.is_exact);
  ASSERT_TRUE(report.exact_reliability.has_value());
  EXPECT_EQ(*report.exact_reliability, Rational::One());
  EXPECT_EQ(report.samples, 0u);
  // A tautology answers every tuple of the universe.
  ASSERT_TRUE(report.observed_answers.has_value());
  EXPECT_EQ(report.observed_answers->size(), 4u);
}

TEST(EngineAnalysisTest, DispatchUsesSimplifiedClass) {
  ReliabilityEngine engine = MakeEngine();
  // ∃y with y unused: conjunctive as written, quantifier-free once the
  // vacuous binder and trivial equality fall away — and the report shows
  // the rung the engine actually took (Prop 3.1, not Thm 4.2).
  EngineReport report = *engine.Run("exists y . S(x) & y = y");
  EXPECT_EQ(report.query_class, QueryClass::kQuantifierFree);
  EXPECT_NE(report.method.find("Prop 3.1"), std::string::npos);
  // Same closed form as the plain query.
  EngineReport plain = *engine.Run("S(x)");
  ASSERT_TRUE(report.exact_reliability.has_value());
  EXPECT_EQ(*report.exact_reliability, *plain.exact_reliability);
}

TEST(EngineAnalysisTest, ArityDroppingSimplificationIsNotSubstituted) {
  ReliabilityEngine engine = MakeEngine();
  // "y = y" folds to true, which would drop the free variable y and change
  // the answer space from n^2 to n. The engine must evaluate the original.
  EngineReport report = *engine.Run("S(x) & y = y");
  EXPECT_EQ(report.query_class, QueryClass::kQuantifierFree);
  ASSERT_TRUE(report.observed_answers.has_value());
  // S answers {0, 2}, y ranges over the full universe: 2 * 4 tuples.
  EXPECT_EQ(report.observed_answers->size(), 8u);
}

TEST(EngineExtensionalTest, SafeQueryRunsExtensionallyWithoutSampling) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport report = *engine.Run("exists x y . E(x,y) & S(y)");
  EXPECT_EQ(report.query_class, QueryClass::kSafeConjunctive);
  EXPECT_TRUE(report.is_exact);
  EXPECT_EQ(report.samples, 0u);
  EXPECT_EQ(report.method.rfind("safe-plan extensional evaluation", 0), 0u)
      << report.method;
  // E is certain; the query fails only when S(1) stays absent (1/2) and
  // S(2) flips away (1/3): H = 1/6, R = 5/6 — identical to what Thm 4.2
  // world enumeration computes (see extensional_test.cc for the
  // systematic bit-for-bit cross-check).
  ASSERT_TRUE(report.exact_reliability.has_value());
  EXPECT_EQ(*report.exact_reliability, Rational(5, 6));
  StatusOr<UnreliableDatabase> db = ParseUdb(kUdb);
  ASSERT_TRUE(db.ok());
  StatusOr<ReliabilityReport> enumerated = ExactReliability(
      *ParseFormula("exists x y . E(x,y) & S(y)"), *db);
  ASSERT_TRUE(enumerated.ok());
  EXPECT_EQ(*report.exact_reliability, enumerated->reliability);
}

TEST(EngineExtensionalTest, ForceExactKeepsTheExtensionalRung) {
  // The extensional rung IS exact, so force_exact does not push the query
  // down to world enumeration.
  ReliabilityEngine engine = MakeEngine();
  EngineOptions options;
  options.force_exact = true;
  EngineReport report = *engine.Run("exists x y . E(x,y) & S(y)", options);
  EXPECT_TRUE(report.is_exact);
  EXPECT_EQ(report.method.rfind("safe-plan extensional evaluation", 0), 0u);
}

TEST(EngineExtensionalTest, ForceApproximateSkipsTheExtensionalRung) {
  ReliabilityEngine engine = MakeEngine();
  EngineOptions options;
  options.force_approximate = true;
  options.seed = 3;
  options.epsilon = 0.3;
  options.delta = 0.3;
  EngineReport report = *engine.Run("exists x y . E(x,y) & S(y)", options);
  EXPECT_FALSE(report.is_exact);
  EXPECT_NE(report.method.find("Cor 5.5"), std::string::npos);
  EXPECT_GT(report.samples, 0u);
}

TEST(EngineExtensionalTest, BudgetFailureDegradesToSampling) {
  ReliabilityEngine engine = MakeEngine();
  FaultInjector::Instance().Reset();
  FaultInjector::Instance().Arm("engine.rung.extensional", 1,
                                StatusCode::kResourceExhausted);
  EngineOptions options;
  options.seed = 9;
  StatusOr<EngineReport> report =
      engine.Run("exists x y . E(x,y) & S(y)", options);
  FaultInjector::Instance().Reset();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_NE(report->degradation_reason.find("RESOURCE_EXHAUSTED"),
            std::string::npos);
  EXPECT_FALSE(report->is_exact);
  EXPECT_GT(report->samples, 0u);
}

TEST(EngineExtensionalTest, NonBudgetFailureSurfacesTyped) {
  ReliabilityEngine engine = MakeEngine();
  FaultInjector::Instance().Reset();
  FaultInjector::Instance().Arm("engine.rung.extensional", 1,
                                StatusCode::kInternal);
  StatusOr<EngineReport> report = engine.Run("exists x y . E(x,y) & S(y)");
  FaultInjector::Instance().Reset();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(EngineExtensionalTest, ExplainReportsUnsafeBlocker) {
  ReliabilityEngine engine = MakeEngine();
  EnginePlan plan =
      *engine.Explain("exists x . exists y . E(x, y) & E(y, x)");
  EXPECT_EQ(plan.query_class, QueryClass::kConjunctive);
  EXPECT_TRUE(plan.safe_plan_applicable);
  EXPECT_FALSE(plan.safe_plan_safe);
  EXPECT_EQ(plan.safe_plan_blocker, "unsafe-self-join");
  EXPECT_EQ(plan.planned_method, "Thm 4.2 exact world enumeration");
}

TEST(EngineExplainTest, ExplainReportsDiagnosticsCostAndPlan) {
  ReliabilityEngine engine = MakeEngine();
  EnginePlan plan = *engine.Explain("exists x . S(x) & E(x, y)");
  // The only diagnostic is the safe-plan note.
  ASSERT_EQ(plan.diagnostics.size(), 1u);
  EXPECT_EQ(plan.diagnostics[0].check_id, "safe-plan");
  EXPECT_EQ(plan.query_class, QueryClass::kSafeConjunctive);
  EXPECT_EQ(plan.effective_class, QueryClass::kSafeConjunctive);
  EXPECT_TRUE(plan.safe_plan_applicable);
  EXPECT_TRUE(plan.safe_plan_safe);
  EXPECT_EQ(plan.safe_plan, "proj x . (S(x) * E(x, y))");
  EXPECT_EQ(plan.static_truth, StaticTruth::kUnknown);
  EXPECT_EQ(plan.cost.universe_size, 4);
  EXPECT_EQ(plan.cost.arity, 1);
  EXPECT_EQ(plan.cost.variables, 2);
  EXPECT_DOUBLE_EQ(plan.cost.answer_space, 4.0);
  EXPECT_DOUBLE_EQ(plan.cost.grounding_size, 16.0);
  EXPECT_EQ(plan.cost.uncertain_atoms, 3u);
  EXPECT_DOUBLE_EQ(plan.cost.world_count, 8.0);
  EXPECT_EQ(plan.planned_method, "safe-plan extensional evaluation");

  EnginePlan broken = *engine.Explain("Zap(x)");
  EXPECT_TRUE(broken.has_errors());
  EXPECT_TRUE(broken.planned_method.empty());
}

TEST(EngineExplainTest, ExplainNeverChargesTheBudget) {
  ReliabilityEngine engine = MakeEngine();
  RunContext ctx = RunContext::WithWorkBudget(1000);
  EngineOptions options;
  options.run_context = &ctx;
  (void)*engine.Explain("forall x . exists y . E(x, y)", options);
  (void)*engine.ExplainDatalog("P(x) :- S(x).", "P", options);
  EXPECT_EQ(ctx.work_spent(), 0u);
}

TEST(EngineExplainTest, DatalogExplain) {
  ReliabilityEngine engine = MakeEngine();
  EnginePlan plan = *engine.ExplainDatalog(kTcProgram, "Path");
  EXPECT_FALSE(plan.has_errors());
  EXPECT_EQ(plan.cost.arity, 2);
  EXPECT_EQ(plan.cost.uncertain_atoms, 3u);
  EXPECT_EQ(plan.planned_method,
            "Thm 4.2 exact world enumeration over Datalog");

  EnginePlan broken = *engine.ExplainDatalog("P(x, y) :- S(x).", "P");
  EXPECT_TRUE(broken.has_errors());
  EXPECT_TRUE(broken.planned_method.empty());
}

}  // namespace
}  // namespace qrel
