#include "qrel/engine/engine.h"

#include <memory>

#include <gtest/gtest.h>

#include "qrel/prob/text_format.h"

namespace qrel {
namespace {

constexpr char kUdb[] = R"(
universe 4
relation E 2
relation S 1
fact E 0 1
fact E 1 2
fact E 2 3
fact S 0 err=1/4
fact S 2 err=1/3
absent S 1 err=1/2
)";

ReliabilityEngine MakeEngine() {
  StatusOr<UnreliableDatabase> db = ParseUdb(kUdb);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return ReliabilityEngine(std::move(db).value());
}

TEST(EngineTest, QuantifierFreeUsesProp31) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport report = *engine.Run("S(x)");
  EXPECT_EQ(report.query_class, QueryClass::kQuantifierFree);
  EXPECT_TRUE(report.is_exact);
  EXPECT_NE(report.method.find("Prop 3.1"), std::string::npos);
  // H = 1/4 + 1/2 + 1/3 = 13/12; R = 1 - (13/12)/4 = 35/48.
  ASSERT_TRUE(report.exact_reliability.has_value());
  EXPECT_EQ(*report.exact_reliability, Rational(35, 48));
}

TEST(EngineTest, SmallSupportUsesExactEnumeration) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport report = *engine.Run("exists x . S(x) & E(x, x)");
  EXPECT_TRUE(report.is_exact);
  EXPECT_NE(report.method.find("Thm 4.2"), std::string::npos);
}

TEST(EngineTest, ForcedApproximationUsesCor55ForExistential) {
  ReliabilityEngine engine = MakeEngine();
  EngineOptions options;
  options.force_approximate = true;
  options.seed = 7;
  EngineReport report = *engine.Run("exists x . S(x)", options);
  EXPECT_FALSE(report.is_exact);
  EXPECT_NE(report.method.find("Cor 5.5"), std::string::npos);
  // Compare against the exact path.
  EngineReport exact = *engine.Run("exists x . S(x)");
  EXPECT_NEAR(report.reliability, exact.reliability, 3 * options.epsilon);
}

TEST(EngineTest, ForcedApproximationUsesThm512ForGeneralQueries) {
  ReliabilityEngine engine = MakeEngine();
  EngineOptions options;
  options.force_approximate = true;
  options.epsilon = 0.05;
  options.delta = 0.05;
  options.seed = 11;
  EngineReport report =
      *engine.Run("forall x . S(x) -> (exists y . E(x, y))", options);
  EXPECT_FALSE(report.is_exact);
  EXPECT_NE(report.method.find("Thm 5.12"), std::string::npos);
  EngineReport exact =
      *engine.Run("forall x . S(x) -> (exists y . E(x, y))");
  EXPECT_NEAR(report.reliability, exact.reliability, 3 * options.epsilon);
}

TEST(EngineTest, ObservedAnswersIncluded) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport report = *engine.Run("S(x)");
  ASSERT_TRUE(report.observed_answers.has_value());
  EXPECT_EQ(*report.observed_answers,
            (std::vector<Tuple>{{0}, {2}}));

  EngineOptions options;
  options.include_observed_answers = false;
  report = *engine.Run("S(x)", options);
  EXPECT_FALSE(report.observed_answers.has_value());
}

TEST(EngineTest, ParseErrorsPropagate) {
  ReliabilityEngine engine = MakeEngine();
  EXPECT_FALSE(engine.Run("S(x").ok());
  EXPECT_FALSE(engine.Run("Zap(x)").ok());
}

TEST(EngineTest, ConflictingForcesRejected) {
  ReliabilityEngine engine = MakeEngine();
  EngineOptions options;
  options.force_exact = true;
  options.force_approximate = true;
  EXPECT_FALSE(engine.Run("S(x)", options).ok());
}

TEST(EngineTest, ClassReporting) {
  ReliabilityEngine engine = MakeEngine();
  EXPECT_EQ(engine.Run("S(x) & E(x, y)")->query_class,
            QueryClass::kQuantifierFree);
  EXPECT_EQ(engine.Run("exists x . S(x) & E(x, x)")->query_class,
            QueryClass::kConjunctive);
  EXPECT_EQ(engine.Run("exists x . S(x) | E(x, x)")->query_class,
            QueryClass::kExistential);
  EXPECT_EQ(engine.Run("forall x . S(x)")->query_class,
            QueryClass::kUniversal);
  EXPECT_EQ(engine.Run("forall x . exists y . E(x, y)")->query_class,
            QueryClass::kGeneralFirstOrder);
}

TEST(EngineTest, ExactAndApproximatePathsAgreeAcrossQueries) {
  ReliabilityEngine engine = MakeEngine();
  for (const std::string text : {
           "exists x . S(x)",
           "exists x y . E(x, y) & S(y)",
           "forall x . S(x) | !S(x)",
       }) {
    EngineReport exact = *engine.Run(text);
    ASSERT_TRUE(exact.is_exact) << text;
    EngineOptions options;
    options.force_approximate = true;
    options.epsilon = 0.04;
    options.delta = 0.02;
    options.seed = 1234;
    EngineReport approx = *engine.Run(text, options);
    EXPECT_NEAR(approx.reliability, exact.reliability, 3 * options.epsilon)
        << text;
  }
}

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

constexpr char kTcProgram[] =
    "Path(x, y) :- E(x, y).\n"
    "Path(x, z) :- Path(x, y), E(y, z).";

TEST(EngineDatalogTest, ExactPathReliability) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport report = *engine.RunDatalog(kTcProgram, "Path");
  EXPECT_TRUE(report.is_exact);
  EXPECT_NE(report.method.find("Datalog"), std::string::npos);
  ASSERT_TRUE(report.observed_answers.has_value());
  // Chain 0->1->2->3: six reachable pairs.
  EXPECT_EQ(report.observed_answers->size(), 6u);
  EXPECT_TRUE(report.exact_reliability.has_value());
}

TEST(EngineDatalogTest, ApproximatePathMatchesExact) {
  ReliabilityEngine engine = MakeEngine();
  EngineReport exact = *engine.RunDatalog(kTcProgram, "Path");
  EngineOptions options;
  options.force_approximate = true;
  options.epsilon = 0.05;
  options.delta = 0.05;
  options.seed = 99;
  options.fixed_samples = 30000;  // the derived bound is ~4e7 samples here
  EngineReport approx = *engine.RunDatalog(kTcProgram, "Path", options);
  EXPECT_FALSE(approx.is_exact);
  EXPECT_NEAR(approx.reliability, exact.reliability, 3 * options.epsilon);
}

TEST(EngineDatalogTest, ErrorsPropagate) {
  ReliabilityEngine engine = MakeEngine();
  EXPECT_FALSE(engine.RunDatalog("Path(x, y) :-", "Path").ok());
  EXPECT_FALSE(engine.RunDatalog(kTcProgram, "Nope").ok());
  EXPECT_FALSE(
      engine.RunDatalog("P(x) :- Zap(x).", "P").ok());
}

}  // namespace
}  // namespace qrel
