#include "qrel/relational/structure.h"

#include <memory>

#include <gtest/gtest.h>

namespace qrel {
namespace {

std::shared_ptr<Vocabulary> GraphVocabulary() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("S", 1);
  vocabulary->AddRelation("P", 0);
  return vocabulary;
}

TEST(VocabularyTest, AddAndFind) {
  Vocabulary vocabulary;
  int e = vocabulary.AddRelation("E", 2);
  int s = vocabulary.AddRelation("S", 1);
  EXPECT_EQ(vocabulary.relation_count(), 2);
  EXPECT_EQ(vocabulary.relation(e).name, "E");
  EXPECT_EQ(vocabulary.relation(e).arity, 2);
  EXPECT_EQ(vocabulary.relation(s).arity, 1);
  EXPECT_EQ(vocabulary.FindRelation("E"), e);
  EXPECT_EQ(vocabulary.FindRelation("S"), s);
  EXPECT_FALSE(vocabulary.FindRelation("missing").has_value());
}

TEST(StructureTest, FactsStartEmpty) {
  Structure structure(GraphVocabulary(), 4);
  EXPECT_EQ(structure.universe_size(), 4);
  EXPECT_EQ(structure.FactCount(), 0u);
  EXPECT_FALSE(structure.AtomTrue(0, {0, 1}));
}

TEST(StructureTest, AddAndRemoveFacts) {
  Structure structure(GraphVocabulary(), 4);
  structure.AddFact(0, {0, 1});
  structure.AddFact(0, {0, 1});  // idempotent
  structure.AddFact(1, {2});
  EXPECT_TRUE(structure.AtomTrue(0, {0, 1}));
  EXPECT_FALSE(structure.AtomTrue(0, {1, 0}));
  EXPECT_TRUE(structure.AtomTrue(1, {2}));
  EXPECT_EQ(structure.FactCount(), 2u);

  structure.SetFact(0, {0, 1}, false);
  EXPECT_FALSE(structure.AtomTrue(0, {0, 1}));
  EXPECT_EQ(structure.FactCount(), 1u);
}

TEST(StructureTest, NullaryRelationActsAsProposition) {
  Structure structure(GraphVocabulary(), 4);
  EXPECT_FALSE(structure.AtomTrue(2, {}));
  structure.AddFact(2, {});
  EXPECT_TRUE(structure.AtomTrue(2, {}));
  structure.SetFact(2, {}, false);
  EXPECT_FALSE(structure.AtomTrue(2, {}));
}

TEST(StructureTest, FactsAreSortedSets) {
  Structure structure(GraphVocabulary(), 4);
  structure.AddFact(0, {3, 1});
  structure.AddFact(0, {0, 2});
  structure.AddFact(0, {0, 1});
  const std::set<Tuple>& facts = structure.Facts(0);
  ASSERT_EQ(facts.size(), 3u);
  auto it = facts.begin();
  EXPECT_EQ(*it++, (Tuple{0, 1}));
  EXPECT_EQ(*it++, (Tuple{0, 2}));
  EXPECT_EQ(*it++, (Tuple{3, 1}));
}

TEST(StructureTest, EqualityComparesContents) {
  auto vocabulary = GraphVocabulary();
  Structure a(vocabulary, 4);
  Structure b(vocabulary, 4);
  EXPECT_TRUE(a == b);
  a.AddFact(0, {0, 1});
  EXPECT_FALSE(a == b);
  b.AddFact(0, {0, 1});
  EXPECT_TRUE(a == b);
}

TEST(AdvanceTupleTest, EnumeratesAllTuplesInOrder) {
  Tuple tuple{0, 0};
  int count = 1;
  while (AdvanceTuple(&tuple, 3)) {
    ++count;
  }
  EXPECT_EQ(count, 9);
  EXPECT_EQ(tuple, (Tuple{2, 2}));
}

TEST(AdvanceTupleTest, EmptyTupleHasOneValue) {
  Tuple tuple;
  EXPECT_FALSE(AdvanceTuple(&tuple, 5));
}

TEST(AdvanceTupleTest, SingleElementUniverse) {
  Tuple tuple{0, 0, 0};
  EXPECT_FALSE(AdvanceTuple(&tuple, 1));
}

}  // namespace
}  // namespace qrel
