#include "qrel/logic/eval.h"

#include <memory>

#include <gtest/gtest.h>

#include "qrel/logic/parser.h"

namespace qrel {
namespace {

// Path graph 0 -> 1 -> 2 -> 3 with S = {0, 2}.
Structure PathGraph() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("S", 1);
  Structure structure(vocabulary, 4);
  structure.AddFact(0, {0, 1});
  structure.AddFact(0, {1, 2});
  structure.AddFact(0, {2, 3});
  structure.AddFact(1, {0});
  structure.AddFact(1, {2});
  return structure;
}

CompiledQuery MustCompile(const std::string& text, const Vocabulary& voc) {
  StatusOr<FormulaPtr> formula = ParseFormula(text);
  EXPECT_TRUE(formula.ok()) << formula.status().ToString();
  StatusOr<CompiledQuery> query = CompiledQuery::Compile(*formula, voc);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return std::move(query).value();
}

TEST(EvalTest, AtomEvaluation) {
  Structure db = PathGraph();
  CompiledQuery query = MustCompile("E(x, y)", db.vocabulary());
  EXPECT_EQ(query.arity(), 2);
  EXPECT_TRUE(query.Eval(db, {0, 1}));
  EXPECT_FALSE(query.Eval(db, {1, 0}));
}

TEST(EvalTest, ConstantsInAtoms) {
  Structure db = PathGraph();
  CompiledQuery query = MustCompile("E(#0, #1)", db.vocabulary());
  EXPECT_EQ(query.arity(), 0);
  EXPECT_TRUE(query.Eval(db, {}));
  EXPECT_FALSE(MustCompile("E(#1, #0)", db.vocabulary()).Eval(db, {}));
}

TEST(EvalTest, BooleanConnectives) {
  Structure db = PathGraph();
  EXPECT_TRUE(MustCompile("S(#0) & !S(#1)", db.vocabulary()).Eval(db, {}));
  EXPECT_TRUE(MustCompile("S(#1) | S(#2)", db.vocabulary()).Eval(db, {}));
  EXPECT_FALSE(MustCompile("S(#1) | S(#3)", db.vocabulary()).Eval(db, {}));
  EXPECT_TRUE(MustCompile("S(#1) -> S(#3)", db.vocabulary()).Eval(db, {}));
  EXPECT_FALSE(MustCompile("S(#0) -> S(#3)", db.vocabulary()).Eval(db, {}));
  EXPECT_TRUE(MustCompile("S(#1) <-> S(#3)", db.vocabulary()).Eval(db, {}));
  EXPECT_FALSE(MustCompile("S(#0) <-> S(#3)", db.vocabulary()).Eval(db, {}));
  EXPECT_TRUE(MustCompile("true", db.vocabulary()).Eval(db, {}));
  EXPECT_FALSE(MustCompile("false", db.vocabulary()).Eval(db, {}));
}

TEST(EvalTest, Equality) {
  Structure db = PathGraph();
  CompiledQuery query = MustCompile("x = y", db.vocabulary());
  EXPECT_TRUE(query.Eval(db, {2, 2}));
  EXPECT_FALSE(query.Eval(db, {2, 3}));
}

TEST(EvalTest, ExistentialQuantifier) {
  Structure db = PathGraph();
  // Has a successor.
  CompiledQuery query = MustCompile("exists y . E(x, y)", db.vocabulary());
  EXPECT_TRUE(query.Eval(db, {0}));
  EXPECT_TRUE(query.Eval(db, {2}));
  EXPECT_FALSE(query.Eval(db, {3}));
}

TEST(EvalTest, UniversalQuantifier) {
  Structure db = PathGraph();
  // Every element with an S-label has a successor.
  EXPECT_TRUE(MustCompile("forall x . S(x) -> (exists y . E(x, y))",
                          db.vocabulary())
                  .Eval(db, {}));
  // Not every element has a successor (3 does not).
  EXPECT_FALSE(
      MustCompile("forall x . exists y . E(x, y)", db.vocabulary())
          .Eval(db, {}));
}

TEST(EvalTest, NestedQuantifiersPathOfLengthTwo) {
  Structure db = PathGraph();
  CompiledQuery query =
      MustCompile("exists y . E(x, y) & E(y, z)", db.vocabulary());
  EXPECT_EQ(query.arity(), 2);
  EXPECT_TRUE(query.Eval(db, {0, 2}));
  EXPECT_TRUE(query.Eval(db, {1, 3}));
  EXPECT_FALSE(query.Eval(db, {0, 3}));
}

TEST(EvalTest, VariableShadowing) {
  Structure db = PathGraph();
  // The inner x is bound by the quantifier; the outer x is free.
  CompiledQuery query =
      MustCompile("S(x) & (exists x . E(x, #3))", db.vocabulary());
  EXPECT_EQ(query.arity(), 1);
  EXPECT_TRUE(query.Eval(db, {0}));   // S(0) and E(2,3)
  EXPECT_FALSE(query.Eval(db, {1}));  // !S(1)
}

TEST(EvalTest, AnswerSetEnumeratesSatisfyingTuples) {
  Structure db = PathGraph();
  CompiledQuery query = MustCompile("E(x, y)", db.vocabulary());
  std::vector<Tuple> answers = query.AnswerSet(db);
  EXPECT_EQ(answers,
            (std::vector<Tuple>{{0, 1}, {1, 2}, {2, 3}}));
}

TEST(EvalTest, AnswerSetOfBooleanQuery) {
  Structure db = PathGraph();
  EXPECT_EQ(MustCompile("S(#0)", db.vocabulary()).AnswerSet(db).size(), 1u);
  EXPECT_TRUE(MustCompile("S(#1)", db.vocabulary()).AnswerSet(db).empty());
}

TEST(EvalTest, CompileRejectsUnknownRelation) {
  Structure db = PathGraph();
  FormulaPtr formula = *ParseFormula("Zap(x)");
  EXPECT_FALSE(CompiledQuery::Compile(formula, db.vocabulary()).ok());
}

TEST(EvalTest, CompileRejectsArityMismatch) {
  Structure db = PathGraph();
  FormulaPtr formula = *ParseFormula("E(x)");
  EXPECT_FALSE(CompiledQuery::Compile(formula, db.vocabulary()).ok());
  formula = *ParseFormula("S(x, y)");
  EXPECT_FALSE(CompiledQuery::Compile(formula, db.vocabulary()).ok());
}

}  // namespace
}  // namespace qrel
