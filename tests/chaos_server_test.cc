// Chaos suite for the serving layer: drive a real TCP loopback server,
// then arm every net.server.* fault site in turn and assert the client
// sees a *typed* error — never a hang, a crash, or a torn response
// mistaken for a complete one. Also pins the client-side error taxonomy
// (EOF-before-response → UNAVAILABLE, mid-frame → DATA_LOSS) and the
// protocol-level DRAIN path. Runs under QREL_SANITIZE in the sanitizer
// build like the engine chaos suite.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/net/client.h"
#include "qrel/net/protocol.h"
#include "qrel/net/server.h"
#include "qrel/prob/text_format.h"
#include "qrel/util/fault_injection.h"

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
)";

constexpr char kQuery[] = "exists x y . E(x,y) & S(y)";

ReliabilityEngine TestEngine() {
  StatusOr<UnreliableDatabase> database = ParseUdb(kUdbText);
  EXPECT_TRUE(database.ok()) << database.status().ToString();
  return ReliabilityEngine(std::move(database).value());
}

class ChaosServerTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(ChaosServerTest, TcpRoundTripAllVerbs) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  StatusOr<Response> response = client.Query(kQuery);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << response->status.ToString();
  EXPECT_EQ(response->Field("exact_value").value_or(""), "3/4");

  response = client.Explain(kQuery);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("admitted").value_or(""), "1");

  response = client.Health();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("state").value_or(""), "serving");

  response = client.Stats();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("queries").value_or(""), "1");

  // A second connection shares the same server state.
  QrelClient other;
  ASSERT_TRUE(other.Connect(server.port()).ok());
  response = other.Query(kQuery);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("cache").value_or(""), "hit");
  server.Shutdown();
}

TEST_F(ChaosServerTest, ServerRejectsInvalidQueryOverTcp) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  StatusOr<Response> response = client.Query("Nope(x)");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  // The connection survives a rejected request.
  response = client.Health();
  ASSERT_TRUE(response.ok());
  server.Shutdown();
}

// Every net.server.* fault site, one at a time: the client must get a
// typed outcome and the server must survive to answer a clean retry on a
// fresh connection.
TEST_F(ChaosServerTest, EveryNetFaultSiteYieldsATypedClientError) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());

  // Clean pass so every lazily-registered net site exists.
  {
    QrelClient client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    StatusOr<Response> response = client.Query(kQuery);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->ok());
  }

  std::vector<std::string> net_sites;
  for (const std::string& site : FaultInjector::Instance().SiteNames()) {
    if (site.rfind("net.server.", 0) == 0) {
      net_sites.push_back(site);
    }
  }
  std::sort(net_sites.begin(), net_sites.end());
  EXPECT_EQ(net_sites,
            (std::vector<std::string>{"net.server.accept", "net.server.dispatch",
                                      "net.server.read", "net.server.worker",
                                      "net.server.write"}));

  uint64_t expected_faults = 0;
  for (const std::string& site : net_sites) {
    SCOPED_TRACE(site);
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Arm(site, 1, StatusCode::kInternal);

    QrelClient client;
    Status connected = client.Connect(server.port(), /*recv_timeout_ms=*/15000);
    ASSERT_TRUE(connected.ok()) << connected.ToString();
    // A distinct seed per site keeps the request out of the result cache,
    // so the dispatch/worker sites are actually reached every time.
    RequestOptions options;
    options.seed = 1000 + (++expected_faults);
    StatusOr<Response> response = client.Query(kQuery, options);

    if (response.ok()) {
      // The fault surfaced as a typed protocol-level error response.
      EXPECT_FALSE(response->ok()) << "site " << site
                                   << " produced a clean answer";
      EXPECT_EQ(response->status.code(), StatusCode::kInternal);
    } else {
      // The fault tore the connection down before a response: the client
      // maps that to a typed, retry-safe transport error — never a torn
      // frame mistaken for an answer, never a hang.
      EXPECT_TRUE(response.status().code() == StatusCode::kUnavailable ||
                  response.status().code() == StatusCode::kDataLoss)
          << "site " << site << ": " << response.status().ToString();
    }
    EXPECT_EQ(FaultInjector::Instance().TriggeredCount(site), 1u);

    // One-shot faults disarm: the same request on a fresh connection now
    // succeeds, and bit-identically to the unfaulted baseline.
    QrelClient retry;
    ASSERT_TRUE(retry.Connect(server.port()).ok());
    StatusOr<Response> clean = retry.Query(kQuery, options);
    ASSERT_TRUE(clean.ok()) << site << ": " << clean.status().ToString();
    ASSERT_TRUE(clean->ok()) << site << ": " << clean->status.ToString();
    EXPECT_EQ(clean->Field("exact_value").value_or(""), "3/4");
  }

  EXPECT_GE(server.stats_snapshot().net_faults, expected_faults);
  server.Shutdown();
}

TEST_F(ChaosServerTest, ClientMapsConnectionRefusedToUnavailable) {
  // Grab an ephemeral port, then close the listener: connecting to it
  // must yield a typed UNAVAILABLE, not a crash or a hang.
  int dead_port;
  {
    QrelServer server(TestEngine(), ServerOptions{});
    ASSERT_TRUE(server.ServeInBackground(0).ok());
    dead_port = server.port();
    server.Shutdown();
  }
  QrelClient client;
  Status connected = client.Connect(dead_port);
  EXPECT_EQ(connected.code(), StatusCode::kUnavailable);
}

TEST_F(ChaosServerTest, DrainOverTcpShedsThenShutsDownCleanly) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  StatusOr<Response> response = client.Drain();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->Field("state").value_or(""), "draining");

  // Queries shed with a typed retryable UNAVAILABLE; HEALTH still works
  // so orchestration can watch the drain.
  response = client.Query(kQuery);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(response->retry_after_ms.has_value());

  response = client.Health();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("state").value_or(""), "draining");

  server.Shutdown();
  EXPECT_EQ(server.stats_snapshot().shed_draining, 1u);
}

// Raw bytes that are not a frame: the server answers one typed
// INVALID_ARGUMENT frame and closes — the stream has no resync point.
TEST_F(ChaosServerTest, MalformedFrameGetsTypedErrorThenClose) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "this is not a length prefix\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, MSG_NOSIGNAL), 0);

  std::string received;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;  // the server closed after its error frame
    }
    received.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t consumed = 0;
  std::string payload;
  ASSERT_TRUE(DecodeFrame(received, &consumed, &payload).ok());
  ASSERT_GT(consumed, 0u) << "no complete error frame before close";
  StatusOr<Response> response = ParseResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  server.Shutdown();
}

// Regression for the remote-DoS review finding: a valid max-size frame
// whose payload is one giant unknown verb used to echo the whole verb
// into the error message, overflow the response frame, and abort the
// server on a fatal CHECK. One unauthenticated request, whole server
// down. Now: one bounded typed error, server stays up.
TEST_F(ChaosServerTest, MaxSizeGarbageRequestGetsBoundedTypedError) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Exactly kMaxFramePayload bytes of payload: a legal frame the decoder
  // accepts, carrying an unknown verb as large as the protocol allows.
  std::string verb(kMaxFramePayload - 1, 'Z');
  std::string frame = EncodeFrame(verb + "\n");
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  // Read exactly one response frame (the connection survives a rejected
  // request, so waiting for EOF would hang).
  std::string received;
  std::string payload;
  size_t consumed = 0;
  char chunk[4096];
  for (;;) {
    Status decoded = DecodeFrame(received, &consumed, &payload);
    ASSERT_TRUE(decoded.ok()) << decoded.ToString();
    if (consumed > 0) {
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection died before a typed response";
    received.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  EXPECT_LE(payload.size(), kMaxErrorMessageBytes + 64);
  StatusOr<Response> response = ParseResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);

  // The server survived: a fresh client gets a clean answer.
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  StatusOr<Response> clean = client.Query(kQuery);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_TRUE(clean->ok()) << clean->status.ToString();
  server.Shutdown();
}

// Connection threads must be joined as connections retire, not hoarded
// until Shutdown — a long-lived server would otherwise leak one thread
// stack per connection ever accepted.
TEST_F(ChaosServerTest, RetiredConnectionThreadsAreReaped) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());

  for (int i = 0; i < 8; ++i) {
    QrelClient client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    StatusOr<Response> response = client.Health();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    client.Close();
  }

  // The accept loop joins retired threads each poll cycle (~100ms).
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (server.unreaped_connection_threads() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.unreaped_connection_threads(), 0u);
  server.Shutdown();
}

// Two concurrent requests that share a *store* key but differ in
// envelope are distinct flights; each must own its own snapshot path.
// Regression: both used to checkpoint into one q<store-key>.snap, with
// the first finisher deleting the file out from under the other.
TEST_F(ChaosServerTest, ConcurrentFlightsWithSharedStoreKeyDoNotCollide) {
  std::string dir = ::testing::TempDir() + "qrel_flight_snap";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  ServerOptions options;
  options.workers = 2;
  options.cache_capacity = 0;  // force both to execute
  options.default_max_work = uint64_t{1} << 27;
  options.max_request_work = uint64_t{1} << 27;
  options.work_quota = uint64_t{1} << 30;
  options.checkpoint_dir = dir;
  options.checkpoint_interval_ms = 1;
  QrelServer server(TestEngine(), options);

  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = kQuery;
  request.options.force_approximate = true;
  request.options.fixed_samples = 400000;
  Request same_store_key = request;
  same_store_key.options.max_work = (uint64_t{1} << 27) - 1;

  Response a;
  Response b;
  std::thread first([&server, &request, &a] { a = server.Handle(request); });
  std::thread second(
      [&server, &same_store_key, &b] { b = server.Handle(same_store_key); });
  first.join();
  second.join();

  // Distinct snapshot paths means neither run can load the other's
  // checkpoints or delete them mid-flight: both finish clean and
  // bit-identical (same determinism inputs).
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  EXPECT_EQ(a.Field("reliability"), b.Field("reliability"));
  EXPECT_EQ(a.Field("samples"), b.Field("samples"));
  EXPECT_EQ(server.stats_snapshot().checkpoint_corrupt, 0u);
  EXPECT_EQ(server.stats_snapshot().checkpoint_resumes, 0u);
  // Both runs succeeded, so both snapshots are gone.
  EXPECT_TRUE(std::filesystem::is_empty(std::filesystem::path(dir)));
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------------------------
// Catalog chaos: the admin plane under injected faults and live traffic.

// kUdbText with one error rate changed: the canary query's exact
// reliability is 1 - 1/2*1/3 = 5/6 instead of 1 - 3/4*1/3 = 3/4.
constexpr char kAltUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/2
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
)";

std::string WriteTempUdb(const std::string& name, const char* text) {
  std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::fputs(text, f);
  std::fclose(f);
  return path;
}

void WaitFor(const std::function<bool()>& predicate, int timeout_ms = 30000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "condition not reached in time";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// Every net.catalog.* fault site, one at a time, over TCP: the admin verb
// fails typed, the already-serving version keeps answering bit-identically,
// and a clean retry of the same admin verb succeeds.
TEST_F(ChaosServerTest, EveryCatalogFaultSiteLeavesTheOldVersionServing) {
  std::string path = WriteTempUdb("qrel_chaos_catalog.udb", kUdbText);
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port(), /*recv_timeout_ms=*/30000).ok());

  // Clean attach → reload → detach → attach pass so every lazily
  // registered catalog site exists, ending with "spare" attached.
  StatusOr<Response> admin = client.Attach("spare", path);
  ASSERT_TRUE(admin.ok() && admin->ok()) << admin.status().ToString();
  admin = client.Reload("spare");
  ASSERT_TRUE(admin.ok() && admin->ok()) << admin.status().ToString();
  admin = client.Detach("spare");
  ASSERT_TRUE(admin.ok() && admin->ok()) << admin.status().ToString();
  admin = client.Attach("spare", path);
  ASSERT_TRUE(admin.ok() && admin->ok()) << admin.status().ToString();

  std::vector<std::string> catalog_sites;
  for (const std::string& site : FaultInjector::Instance().SiteNames()) {
    if (site.rfind("net.catalog.", 0) == 0) {
      catalog_sites.push_back(site);
    }
  }
  std::sort(catalog_sites.begin(), catalog_sites.end());
  EXPECT_EQ(catalog_sites,
            (std::vector<std::string>{
                "net.catalog.attach", "net.catalog.detach",
                "net.catalog.fingerprint", "net.catalog.load",
                "net.catalog.swap", "net.catalog.verify"}));

  RequestOptions on_spare;
  on_spare.db = "spare";
  for (const std::string& site : catalog_sites) {
    SCOPED_TRACE(site);
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Arm(site, 1, StatusCode::kInternal);

    StatusOr<Response> faulted = Status::Internal("unset");
    if (site == "net.catalog.attach") {
      faulted = client.Attach("spare2", path);
    } else if (site == "net.catalog.detach") {
      faulted = client.Detach("spare");
    } else {
      faulted = client.Reload("spare");
    }
    ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
    EXPECT_EQ(faulted->status.code(), StatusCode::kInternal)
        << faulted->status.ToString();
    EXPECT_EQ(FaultInjector::Instance().TriggeredCount(site), 1u);

    // The fault disturbed nothing: the attached version still serves the
    // bit-identical answer.
    StatusOr<Response> canary = client.Query(kQuery, on_spare);
    ASSERT_TRUE(canary.ok()) << canary.status().ToString();
    ASSERT_TRUE(canary->ok()) << canary->status.ToString();
    EXPECT_EQ(canary->Field("exact_value").value_or(""), "3/4");
    EXPECT_EQ(canary->Field("db").value_or(""), "spare");

    // One-shot faults disarm: a clean retry of the same verb succeeds.
    StatusOr<Response> retry = Status::Internal("unset");
    if (site == "net.catalog.attach") {
      retry = client.Attach("spare2", path);
      ASSERT_TRUE(retry.ok() && retry->ok()) << site;
      ASSERT_TRUE(client.Detach("spare2")->ok());
    } else if (site == "net.catalog.detach") {
      retry = client.Detach("spare");
      ASSERT_TRUE(retry.ok() && retry->ok()) << site;
      ASSERT_TRUE(client.Attach("spare", path)->ok());
    } else {
      retry = client.Reload("spare");
      ASSERT_TRUE(retry.ok() && retry->ok()) << site;
    }
  }
  EXPECT_GE(server.stats_snapshot().reload_failures, 4u);
  server.Shutdown();
  std::remove(path.c_str());
}

// Reload churn under live traffic: every OK answer must be bit-identical
// to the *version it reports having run against* — a request admitted
// before a swap answers from its pinned snapshot, never a half-reloaded
// one. With two content-distinct versions alternating, that means every
// response's db_fingerprint maps to exactly one exact_value, and only the
// two legitimate values ever appear.
TEST_F(ChaosServerTest, ConcurrentReloadPinsEveryAnswerToItsVersion) {
  std::string path = WriteTempUdb("qrel_chaos_churn.udb", kUdbText);
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());
  {
    QrelClient admin;
    ASSERT_TRUE(admin.Connect(server.port()).ok());
    ASSERT_TRUE(admin.Attach("churn", path)->ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> bad_answers{0};
  std::mutex seen_mutex;
  std::map<std::string, std::string> value_by_fingerprint;

  constexpr int kTrafficThreads = 3;
  std::vector<std::thread> traffic;
  for (int t = 0; t < kTrafficThreads; ++t) {
    traffic.emplace_back([&server, &stop, &bad_answers, &seen_mutex,
                          &value_by_fingerprint] {
      QrelClient client;
      ASSERT_TRUE(client.Connect(server.port(), 30000).ok());
      RequestOptions options;
      options.db = "churn";
      while (!stop.load(std::memory_order_acquire)) {
        StatusOr<Response> response = client.Query(kQuery, options);
        if (!response.ok()) {
          ASSERT_TRUE(client.Connect(server.port(), 30000).ok());
          continue;
        }
        if (!response->ok()) {
          continue;  // transient shed is legal; a wrong answer is not
        }
        std::string fingerprint =
            response->Field("db_fingerprint").value_or("");
        std::string value = response->Field("exact_value").value_or("");
        if (value != "3/4" && value != "5/6") {
          bad_answers.fetch_add(1);
        }
        std::unique_lock<std::mutex> lock(seen_mutex);
        auto [it, inserted] =
            value_by_fingerprint.emplace(fingerprint, value);
        if (!inserted && it->second != value) {
          bad_answers.fetch_add(1);  // one version, two different answers
        }
      }
    });
  }

  // The churn thread alternates the database between the two contents.
  {
    QrelClient admin;
    ASSERT_TRUE(admin.Connect(server.port(), 30000).ok());
    for (int round = 0; round < 10; ++round) {
      WriteTempUdb("qrel_chaos_churn.udb",
                   (round % 2 == 0) ? kAltUdbText : kUdbText);
      StatusOr<Response> reloaded = admin.Reload("churn");
      ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
      ASSERT_TRUE(reloaded->ok()) << reloaded->status.ToString();
      EXPECT_EQ(reloaded->Field("changed").value_or(""), "1");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : traffic) {
    t.join();
  }

  EXPECT_EQ(bad_answers.load(), 0);
  // Both contents actually served during the churn.
  std::set<std::string> values;
  for (const auto& [fingerprint, value] : value_by_fingerprint) {
    values.insert(value);
  }
  EXPECT_EQ(values, (std::set<std::string>{"3/4", "5/6"}));
  server.Shutdown();
  std::remove(path.c_str());
}

// DETACH drains one database the way SIGTERM drains the whole server:
// its in-flight work is cancelled typed after the grace period, other
// databases never notice, and the name then fails typed NOT_FOUND.
TEST_F(ChaosServerTest, DetachDrainsInFlightWorkLikeSigterm) {
  ServerOptions options;
  options.workers = 2;
  options.default_max_work = uint64_t{1} << 27;
  options.max_request_work = uint64_t{1} << 27;
  options.work_quota = uint64_t{1} << 30;
  options.drain_grace_ms = 20;
  std::string path = WriteTempUdb("qrel_chaos_detach.udb", kUdbText);
  QrelServer server(TestEngine(), options);
  ASSERT_TRUE(server.ServeInBackground(0).ok());
  QrelClient admin;
  ASSERT_TRUE(admin.Connect(server.port(), 30000).ok());
  ASSERT_TRUE(admin.Attach("victim", path)->ok());

  // A slow in-flight run against the victim database.
  Request slow;
  slow.verb = RequestVerb::kQuery;
  slow.query = kQuery;
  slow.options.db = "victim";
  slow.options.force_approximate = true;
  slow.options.fixed_samples = 50000000;
  Response cancelled;
  std::thread inflight(
      [&server, &slow, &cancelled] { cancelled = server.Handle(slow); });
  WaitFor([&server] { return server.inflight() == 1; });

  StatusOr<Response> detached = admin.Detach("victim");
  ASSERT_TRUE(detached.ok()) << detached.status().ToString();
  ASSERT_TRUE(detached->ok()) << detached->status.ToString();
  inflight.join();
  // The straggler outlived the grace period: typed CANCELLED, no hang.
  EXPECT_EQ(cancelled.status.code(), StatusCode::kCancelled);

  // The name is gone, typed; the default database never noticed.
  StatusOr<Response> gone = admin.Query(kQuery, slow.options);
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->status.code(), StatusCode::kNotFound);
  StatusOr<Response> unaffected = admin.Query(kQuery);
  ASSERT_TRUE(unaffected.ok());
  ASSERT_TRUE(unaffected->ok()) << unaffected->status.ToString();
  EXPECT_EQ(unaffected->Field("exact_value").value_or(""), "3/4");
  EXPECT_EQ(server.inflight(), 0u);
  server.Shutdown();
  std::remove(path.c_str());
}

// The tenant-isolation chaos property: one tenant saturating the queue
// cannot shed another tenant's traffic. The hog's surplus jobs are the
// ones displaced; the quiet tenant admits, runs, and completes.
TEST_F(ChaosServerTest, ASaturatingTenantCannotShedAnotherTenant) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 3;
  options.default_max_work = uint64_t{1} << 27;
  options.max_request_work = uint64_t{1} << 27;
  options.work_quota = uint64_t{1} << 30;
  QrelServer server(TestEngine(), options);

  auto slow = [](uint64_t seed, const std::string& tenant) {
    Request request;
    request.verb = RequestVerb::kQuery;
    request.query = kQuery;
    request.options.force_approximate = true;
    request.options.fixed_samples = 2000000;
    request.options.seed = seed;
    request.options.tenant = tenant;
    return request;
  };

  // The hog: one running plus a full queue of its jobs.
  std::vector<std::thread> hog_threads;
  std::vector<Response> hog_responses(4);
  for (int i = 0; i < 4; ++i) {
    hog_threads.emplace_back([&server, &slow, &hog_responses, i] {
      hog_responses[i] =
          server.Handle(slow(static_cast<uint64_t>(i) + 1, "hog"));
    });
    if (i == 0) {
      WaitFor([&server] { return server.inflight() == 1; });
    } else {
      size_t want = static_cast<size_t>(i);
      WaitFor([&server, want] { return server.queue_depth() == want; });
    }
  }

  // The quiet tenant arrives at a full queue — and must not be shed:
  // the hog's most recent job is displaced to make room.
  Response quiet = server.Handle(slow(100, "quiet"));
  ASSERT_TRUE(quiet.ok()) << quiet.status.ToString();

  for (std::thread& t : hog_threads) {
    t.join();
  }
  int hog_displaced = 0;
  for (const Response& response : hog_responses) {
    if (!response.ok()) {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++hog_displaced;
    }
  }
  EXPECT_EQ(hog_displaced, 1);

  ServerStatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.shed_displaced, 1u);
  EXPECT_EQ(stats.shed_queue_full, 0u);
  std::vector<TenantStatsSnapshot> tenants = server.tenant_stats();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].name, "hog");
  EXPECT_EQ(tenants[0].displaced, 1u);
  EXPECT_EQ(tenants[1].name, "quiet");
  EXPECT_EQ(tenants[1].displaced, 0u);
  EXPECT_EQ(tenants[1].completed, 1u);
}

}  // namespace
}  // namespace qrel
