// Chaos suite for the serving layer: drive a real TCP loopback server,
// then arm every net.server.* fault site in turn and assert the client
// sees a *typed* error — never a hang, a crash, or a torn response
// mistaken for a complete one. Also pins the client-side error taxonomy
// (EOF-before-response → UNAVAILABLE, mid-frame → DATA_LOSS) and the
// protocol-level DRAIN path. Runs under QREL_SANITIZE in the sanitizer
// build like the engine chaos suite.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/net/client.h"
#include "qrel/net/protocol.h"
#include "qrel/net/server.h"
#include "qrel/prob/text_format.h"
#include "qrel/util/fault_injection.h"

namespace qrel {
namespace {

constexpr char kUdbText[] = R"(
universe 3
relation E 2
relation S 1
fact E 0 1 err=1/4
fact E 1 2 err=1/8
fact S 0
absent S 1 err=1/3
)";

constexpr char kQuery[] = "exists x y . E(x,y) & S(y)";

ReliabilityEngine TestEngine() {
  StatusOr<UnreliableDatabase> database = ParseUdb(kUdbText);
  EXPECT_TRUE(database.ok()) << database.status().ToString();
  return ReliabilityEngine(std::move(database).value());
}

class ChaosServerTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(ChaosServerTest, TcpRoundTripAllVerbs) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  StatusOr<Response> response = client.Query(kQuery);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << response->status.ToString();
  EXPECT_EQ(response->Field("exact_value").value_or(""), "3/4");

  response = client.Explain(kQuery);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("admitted").value_or(""), "1");

  response = client.Health();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("state").value_or(""), "serving");

  response = client.Stats();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("queries").value_or(""), "1");

  // A second connection shares the same server state.
  QrelClient other;
  ASSERT_TRUE(other.Connect(server.port()).ok());
  response = other.Query(kQuery);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("cache").value_or(""), "hit");
  server.Shutdown();
}

TEST_F(ChaosServerTest, ServerRejectsInvalidQueryOverTcp) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  StatusOr<Response> response = client.Query("Nope(x)");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  // The connection survives a rejected request.
  response = client.Health();
  ASSERT_TRUE(response.ok());
  server.Shutdown();
}

// Every net.server.* fault site, one at a time: the client must get a
// typed outcome and the server must survive to answer a clean retry on a
// fresh connection.
TEST_F(ChaosServerTest, EveryNetFaultSiteYieldsATypedClientError) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());

  // Clean pass so every lazily-registered net site exists.
  {
    QrelClient client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    StatusOr<Response> response = client.Query(kQuery);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->ok());
  }

  std::vector<std::string> net_sites;
  for (const std::string& site : FaultInjector::Instance().SiteNames()) {
    if (site.rfind("net.server.", 0) == 0) {
      net_sites.push_back(site);
    }
  }
  std::sort(net_sites.begin(), net_sites.end());
  EXPECT_EQ(net_sites,
            (std::vector<std::string>{"net.server.accept", "net.server.dispatch",
                                      "net.server.read", "net.server.worker",
                                      "net.server.write"}));

  uint64_t expected_faults = 0;
  for (const std::string& site : net_sites) {
    SCOPED_TRACE(site);
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Arm(site, 1, StatusCode::kInternal);

    QrelClient client;
    Status connected = client.Connect(server.port(), /*recv_timeout_ms=*/15000);
    ASSERT_TRUE(connected.ok()) << connected.ToString();
    // A distinct seed per site keeps the request out of the result cache,
    // so the dispatch/worker sites are actually reached every time.
    RequestOptions options;
    options.seed = 1000 + (++expected_faults);
    StatusOr<Response> response = client.Query(kQuery, options);

    if (response.ok()) {
      // The fault surfaced as a typed protocol-level error response.
      EXPECT_FALSE(response->ok()) << "site " << site
                                   << " produced a clean answer";
      EXPECT_EQ(response->status.code(), StatusCode::kInternal);
    } else {
      // The fault tore the connection down before a response: the client
      // maps that to a typed, retry-safe transport error — never a torn
      // frame mistaken for an answer, never a hang.
      EXPECT_TRUE(response.status().code() == StatusCode::kUnavailable ||
                  response.status().code() == StatusCode::kDataLoss)
          << "site " << site << ": " << response.status().ToString();
    }
    EXPECT_EQ(FaultInjector::Instance().TriggeredCount(site), 1u);

    // One-shot faults disarm: the same request on a fresh connection now
    // succeeds, and bit-identically to the unfaulted baseline.
    QrelClient retry;
    ASSERT_TRUE(retry.Connect(server.port()).ok());
    StatusOr<Response> clean = retry.Query(kQuery, options);
    ASSERT_TRUE(clean.ok()) << site << ": " << clean.status().ToString();
    ASSERT_TRUE(clean->ok()) << site << ": " << clean->status.ToString();
    EXPECT_EQ(clean->Field("exact_value").value_or(""), "3/4");
  }

  EXPECT_GE(server.stats_snapshot().net_faults, expected_faults);
  server.Shutdown();
}

TEST_F(ChaosServerTest, ClientMapsConnectionRefusedToUnavailable) {
  // Grab an ephemeral port, then close the listener: connecting to it
  // must yield a typed UNAVAILABLE, not a crash or a hang.
  int dead_port;
  {
    QrelServer server(TestEngine(), ServerOptions{});
    ASSERT_TRUE(server.ServeInBackground(0).ok());
    dead_port = server.port();
    server.Shutdown();
  }
  QrelClient client;
  Status connected = client.Connect(dead_port);
  EXPECT_EQ(connected.code(), StatusCode::kUnavailable);
}

TEST_F(ChaosServerTest, DrainOverTcpShedsThenShutsDownCleanly) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  StatusOr<Response> response = client.Drain();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->Field("state").value_or(""), "draining");

  // Queries shed with a typed retryable UNAVAILABLE; HEALTH still works
  // so orchestration can watch the drain.
  response = client.Query(kQuery);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(response->retry_after_ms.has_value());

  response = client.Health();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Field("state").value_or(""), "draining");

  server.Shutdown();
  EXPECT_EQ(server.stats_snapshot().shed_draining, 1u);
}

// Raw bytes that are not a frame: the server answers one typed
// INVALID_ARGUMENT frame and closes — the stream has no resync point.
TEST_F(ChaosServerTest, MalformedFrameGetsTypedErrorThenClose) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "this is not a length prefix\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, MSG_NOSIGNAL), 0);

  std::string received;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;  // the server closed after its error frame
    }
    received.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t consumed = 0;
  std::string payload;
  ASSERT_TRUE(DecodeFrame(received, &consumed, &payload).ok());
  ASSERT_GT(consumed, 0u) << "no complete error frame before close";
  StatusOr<Response> response = ParseResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  server.Shutdown();
}

// Regression for the remote-DoS review finding: a valid max-size frame
// whose payload is one giant unknown verb used to echo the whole verb
// into the error message, overflow the response frame, and abort the
// server on a fatal CHECK. One unauthenticated request, whole server
// down. Now: one bounded typed error, server stays up.
TEST_F(ChaosServerTest, MaxSizeGarbageRequestGetsBoundedTypedError) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Exactly kMaxFramePayload bytes of payload: a legal frame the decoder
  // accepts, carrying an unknown verb as large as the protocol allows.
  std::string verb(kMaxFramePayload - 1, 'Z');
  std::string frame = EncodeFrame(verb + "\n");
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  // Read exactly one response frame (the connection survives a rejected
  // request, so waiting for EOF would hang).
  std::string received;
  std::string payload;
  size_t consumed = 0;
  char chunk[4096];
  for (;;) {
    Status decoded = DecodeFrame(received, &consumed, &payload);
    ASSERT_TRUE(decoded.ok()) << decoded.ToString();
    if (consumed > 0) {
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection died before a typed response";
    received.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  EXPECT_LE(payload.size(), kMaxErrorMessageBytes + 64);
  StatusOr<Response> response = ParseResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);

  // The server survived: a fresh client gets a clean answer.
  QrelClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  StatusOr<Response> clean = client.Query(kQuery);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_TRUE(clean->ok()) << clean->status.ToString();
  server.Shutdown();
}

// Connection threads must be joined as connections retire, not hoarded
// until Shutdown — a long-lived server would otherwise leak one thread
// stack per connection ever accepted.
TEST_F(ChaosServerTest, RetiredConnectionThreadsAreReaped) {
  QrelServer server(TestEngine(), ServerOptions{});
  ASSERT_TRUE(server.ServeInBackground(0).ok());

  for (int i = 0; i < 8; ++i) {
    QrelClient client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    StatusOr<Response> response = client.Health();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    client.Close();
  }

  // The accept loop joins retired threads each poll cycle (~100ms).
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (server.unreaped_connection_threads() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.unreaped_connection_threads(), 0u);
  server.Shutdown();
}

// Two concurrent requests that share a *store* key but differ in
// envelope are distinct flights; each must own its own snapshot path.
// Regression: both used to checkpoint into one q<store-key>.snap, with
// the first finisher deleting the file out from under the other.
TEST_F(ChaosServerTest, ConcurrentFlightsWithSharedStoreKeyDoNotCollide) {
  std::string dir = ::testing::TempDir() + "qrel_flight_snap";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  ServerOptions options;
  options.workers = 2;
  options.cache_capacity = 0;  // force both to execute
  options.default_max_work = uint64_t{1} << 27;
  options.max_request_work = uint64_t{1} << 27;
  options.work_quota = uint64_t{1} << 30;
  options.checkpoint_dir = dir;
  options.checkpoint_interval_ms = 1;
  QrelServer server(TestEngine(), options);

  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = kQuery;
  request.options.force_approximate = true;
  request.options.fixed_samples = 400000;
  Request same_store_key = request;
  same_store_key.options.max_work = (uint64_t{1} << 27) - 1;

  Response a;
  Response b;
  std::thread first([&server, &request, &a] { a = server.Handle(request); });
  std::thread second(
      [&server, &same_store_key, &b] { b = server.Handle(same_store_key); });
  first.join();
  second.join();

  // Distinct snapshot paths means neither run can load the other's
  // checkpoints or delete them mid-flight: both finish clean and
  // bit-identical (same determinism inputs).
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  EXPECT_EQ(a.Field("reliability"), b.Field("reliability"));
  EXPECT_EQ(a.Field("samples"), b.Field("samples"));
  EXPECT_EQ(server.stats_snapshot().checkpoint_corrupt, 0u);
  EXPECT_EQ(server.stats_snapshot().checkpoint_resumes, 0u);
  // Both runs succeeded, so both snapshots are gone.
  EXPECT_TRUE(std::filesystem::is_empty(std::filesystem::path(dir)));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace qrel
