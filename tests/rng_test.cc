#include "qrel/util/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(1234);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowHitsAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(rng.NextBelow(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double value = rng.NextDouble();
    ASSERT_GE(value, 0.0);
    ASSERT_LT(value, 1.0);
    sum += value;
  }
  // Mean of U[0,1) over 10k draws: within 5 standard deviations of 1/2.
  EXPECT_NEAR(sum / 10000.0, 0.5, 5.0 * std::sqrt(1.0 / 12.0 / 10000.0));
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(77);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 0.3, 5.0 * std::sqrt(0.3 * 0.7 / trials));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(123);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent stream.
  Rng parent_copy(123);
  (void)parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace qrel
