#include "qrel/util/rng.h"

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(1234);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowHitsAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(rng.NextBelow(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double value = rng.NextDouble();
    ASSERT_GE(value, 0.0);
    ASSERT_LT(value, 1.0);
    sum += value;
  }
  // Mean of U[0,1) over 10k draws: within 5 standard deviations of 1/2.
  EXPECT_NEAR(sum / 10000.0, 0.5, 5.0 * std::sqrt(1.0 / 12.0 / 10000.0));
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(77);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 0.3, 5.0 * std::sqrt(0.3 * 0.7 / trials));
}

TEST(RngTest, SaveRestoreRoundTripsExactly) {
  Rng rng(42);
  // Advance to an arbitrary mid-stream point before saving.
  for (int i = 0; i < 1000; ++i) {
    (void)rng.NextUint64();
  }
  std::array<uint64_t, 4> state = rng.Save();
  StatusOr<Rng> restored = Rng::Restore(state);
  ASSERT_TRUE(restored.ok());
  // The restored generator's future output must be identical to the
  // uninterrupted generator's — the foundation of deterministic resume.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(restored->NextUint64(), rng.NextUint64()) << "draw " << i;
  }
}

TEST(RngTest, SaveRestoreMidStreamMatchesUninterruptedRun) {
  // Save -> restore -> draw equals one uninterrupted draw sequence, across
  // every generator method (they consume different numbers of raw words).
  Rng uninterrupted(7);
  std::vector<double> expected;
  for (int i = 0; i < 100; ++i) {
    expected.push_back(uninterrupted.NextDouble());
    expected.push_back(static_cast<double>(uninterrupted.NextBelow(37)));
    expected.push_back(uninterrupted.NextBernoulli(0.4) ? 1.0 : 0.0);
  }

  Rng first_half(7);
  std::vector<double> actual;
  for (int i = 0; i < 50; ++i) {
    actual.push_back(first_half.NextDouble());
    actual.push_back(static_cast<double>(first_half.NextBelow(37)));
    actual.push_back(first_half.NextBernoulli(0.4) ? 1.0 : 0.0);
  }
  StatusOr<Rng> second_half = Rng::Restore(first_half.Save());
  ASSERT_TRUE(second_half.ok());
  for (int i = 0; i < 50; ++i) {
    actual.push_back(second_half->NextDouble());
    actual.push_back(static_cast<double>(second_half->NextBelow(37)));
    actual.push_back(second_half->NextBernoulli(0.4) ? 1.0 : 0.0);
  }
  EXPECT_EQ(actual, expected);
}

TEST(RngTest, RestoreRejectsAllZeroState) {
  StatusOr<Rng> restored = Rng::Restore({0, 0, 0, 0});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(123);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent stream.
  Rng parent_copy(123);
  (void)parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace qrel
