#include "qrel/propositional/karp_luby.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qrel/propositional/exact.h"
#include "qrel/propositional/naive_mc.h"

namespace qrel {
namespace {

std::vector<Rational> Uniform(int n) {
  return std::vector<Rational>(static_cast<size_t>(n), Rational::Half());
}

// Random kDNF generator shared by the agreement tests.
Dnf RandomDnf(Rng* rng, int variables, int terms, int max_width) {
  Dnf dnf(variables);
  for (int t = 0; t < terms; ++t) {
    std::vector<PropLiteral> term;
    int width = 1 + static_cast<int>(rng->NextBelow(
                        static_cast<uint64_t>(max_width)));
    for (int l = 0; l < width; ++l) {
      term.push_back({static_cast<int>(
                          rng->NextBelow(static_cast<uint64_t>(variables))),
                      rng->NextBernoulli(0.5)});
    }
    dnf.AddTerm(std::move(term));
  }
  return dnf;
}

TEST(KarpLubyTest, DegenerateCases) {
  KarpLubyOptions options;
  // No terms: probability 0, no sampling.
  Dnf empty(3);
  KarpLubyResult result = *KarpLubyProbability(empty, Uniform(3), options);
  EXPECT_EQ(result.estimate, 0.0);
  EXPECT_EQ(result.samples, 0u);

  // Constant-true term: probability 1, no sampling.
  Dnf tautology(2);
  tautology.AddTerm({});
  result = *KarpLubyProbability(tautology, Uniform(2), options);
  EXPECT_EQ(result.estimate, 1.0);

  // All terms impossible (variable probability 0).
  Dnf dead(1);
  dead.AddTerm({{0, true}});
  result = *KarpLubyProbability(dead, {Rational(0)}, options);
  EXPECT_EQ(result.estimate, 0.0);
}

TEST(KarpLubyTest, RejectsBadArguments) {
  Dnf dnf(2);
  dnf.AddTerm({{0, true}});
  KarpLubyOptions options;
  EXPECT_FALSE(KarpLubyProbability(dnf, Uniform(3), options).ok());
  options.epsilon = 0.0;
  EXPECT_FALSE(KarpLubyProbability(dnf, Uniform(2), options).ok());
  options.epsilon = 0.1;
  options.delta = 1.5;
  EXPECT_FALSE(KarpLubyProbability(dnf, Uniform(2), options).ok());
  options.delta = 0.1;
  EXPECT_FALSE(
      KarpLubyProbability(dnf, {Rational(3, 2), Rational(1, 2)}, options)
          .ok());
}

TEST(KarpLubyTest, SampleBoundFormula) {
  // t = ceil(4 m ln(2/δ) / ε²).
  EXPECT_EQ(KarpLubySampleBound(1, 1.0, 2.0 / std::exp(1.0)), 4u);
  EXPECT_GE(KarpLubySampleBound(10, 0.1, 0.05), 10u * 400u);
}

TEST(KarpLubyTest, SingleTermIsExactUpToSampling) {
  // One term: every sample satisfies exactly that term, so the estimate is
  // exactly S = Pr[T].
  Dnf dnf(3);
  dnf.AddTerm({{0, true}, {1, false}});
  std::vector<Rational> prob = {Rational(1, 3), Rational(1, 4),
                                Rational(1, 2)};
  KarpLubyOptions options;
  options.fixed_samples = 50;
  KarpLubyResult result = *KarpLubyProbability(dnf, prob, options);
  EXPECT_DOUBLE_EQ(result.estimate, (Rational(1, 3) * Rational(3, 4))
                                        .ToDouble());
}

class KarpLubyAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KarpLubyAgreementTest, WithinRelativeErrorOfExact) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    int variables = 4 + static_cast<int>(rng.NextBelow(8));
    Dnf dnf = RandomDnf(&rng, variables,
                        2 + static_cast<int>(rng.NextBelow(10)), 3);
    std::vector<Rational> prob;
    for (int v = 0; v < variables; ++v) {
      int64_t den = 2 + static_cast<int64_t>(rng.NextBelow(8));
      int64_t num = 1 + static_cast<int64_t>(rng.NextBelow(
                            static_cast<uint64_t>(den) - 1));
      prob.push_back(Rational(num, den));
    }
    double exact = ShannonDnfProbability(dnf, prob).ToDouble();

    for (auto estimator : {KarpLubyOptions::Estimator::kCoverage,
                           KarpLubyOptions::Estimator::kCanonical}) {
      KarpLubyOptions options;
      options.epsilon = 0.05;
      options.delta = 0.01;
      options.seed = rng.NextUint64();
      options.estimator = estimator;
      KarpLubyResult result = *KarpLubyProbability(dnf, prob, options);
      if (exact == 0.0) {
        EXPECT_EQ(result.estimate, 0.0);
      } else {
        // Allow 3x the requested ε to keep the test deterministic-safe.
        EXPECT_NEAR(result.estimate, exact, 3 * options.epsilon * exact);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KarpLubyAgreementTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(KarpLubyTest, CountMatchesExactCount) {
  Rng rng(77);
  Dnf dnf = RandomDnf(&rng, 10, 8, 3);
  double exact = CountDnfModels(dnf).ToDouble();
  KarpLubyOptions options;
  options.epsilon = 0.05;
  options.delta = 0.01;
  options.seed = 7;
  KarpLubyResult result = *KarpLubyCount(dnf, options);
  if (exact == 0.0) {
    EXPECT_EQ(result.estimate, 0.0);
  } else {
    EXPECT_NEAR(result.estimate, exact, 3 * options.epsilon * exact);
  }
}

TEST(KarpLubyTest, RareEventBeatsNaiveMonteCarloAtEqualBudget) {
  // A conjunction of 18 positive literals at p = 1/2: Pr = 2^-18 ≈ 4e-6.
  // With 20k samples, naive MC almost surely sees zero hits; Karp-Luby is
  // exact here (single term) whatever the budget.
  Dnf dnf(18);
  std::vector<PropLiteral> term;
  for (int v = 0; v < 18; ++v) {
    term.push_back({v, true});
  }
  dnf.AddTerm(std::move(term));
  double exact = std::ldexp(1.0, -18);

  KarpLubyOptions kl;
  kl.fixed_samples = 20000;
  kl.seed = 5;
  KarpLubyResult kl_result = *KarpLubyProbability(dnf, Uniform(18), kl);
  EXPECT_NEAR(kl_result.estimate, exact, 1e-12);

  NaiveMcResult mc_result =
      *NaiveMcProbability(dnf, Uniform(18), 20000, 5);
  EXPECT_EQ(mc_result.hits, 0u);  // the strawman misses the event entirely
}

TEST(KarpLubyTest, DeterministicForFixedSeed) {
  Rng rng(123);
  Dnf dnf = RandomDnf(&rng, 8, 6, 3);
  KarpLubyOptions options;
  options.seed = 42;
  options.fixed_samples = 1000;
  KarpLubyResult a = *KarpLubyProbability(dnf, Uniform(8), options);
  KarpLubyResult b = *KarpLubyProbability(dnf, Uniform(8), options);
  EXPECT_EQ(a.estimate, b.estimate);
}

}  // namespace
}  // namespace qrel
