#include "qrel/logic/normal_form.h"

#include <memory>

#include <gtest/gtest.h>

#include "qrel/logic/classify.h"
#include "qrel/logic/eval.h"
#include "qrel/logic/parser.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

bool IsNnf(const Formula& formula) {
  switch (formula.kind) {
    case FormulaKind::kNot:
      return formula.children[0]->kind == FormulaKind::kAtom ||
             formula.children[0]->kind == FormulaKind::kEquals;
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      return false;
    default:
      for (const FormulaPtr& child : formula.children) {
        if (!IsNnf(*child)) return false;
      }
      return true;
  }
}

// Exhaustively checks semantic equivalence of two sentences over all
// databases with one unary relation S on a 2-element universe.
void ExpectEquivalentOverUnaryDatabases(const FormulaPtr& a,
                                        const FormulaPtr& b) {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("S", 1);
  vocabulary->AddRelation("T", 1);
  CompiledQuery qa = std::move(CompiledQuery::Compile(a, *vocabulary)).value();
  CompiledQuery qb = std::move(CompiledQuery::Compile(b, *vocabulary)).value();
  for (int mask = 0; mask < 16; ++mask) {
    Structure db(vocabulary, 2);
    db.SetFact(0, {0}, mask & 1);
    db.SetFact(0, {1}, mask & 2);
    db.SetFact(1, {0}, mask & 4);
    db.SetFact(1, {1}, mask & 8);
    EXPECT_EQ(qa.Eval(db, {}), qb.Eval(db, {}))
        << a->ToString() << " vs " << b->ToString() << " on mask " << mask;
  }
}

TEST(NnfTest, OutputIsNnfAndEquivalent) {
  for (const std::string text : {
           "!(S(#0) & T(#1))",
           "!(S(#0) | T(#1))",
           "S(#0) -> T(#1)",
           "!(S(#0) -> T(#1))",
           "S(#0) <-> T(#1)",
           "!(S(#0) <-> T(#1))",
           "!!S(#0)",
           "!(exists x . S(x))",
           "!(forall x . S(x) -> T(x))",
           "!(S(#0) <-> (T(#0) -> S(#1)))",
           "!true",
           "!false",
       }) {
    FormulaPtr original = MustParse(text);
    FormulaPtr nnf = ToNnf(original);
    EXPECT_TRUE(IsNnf(*nnf)) << text << " => " << nnf->ToString();
    ExpectEquivalentOverUnaryDatabases(original, nnf);
  }
}

TEST(NnfTest, QuantifiersFlipUnderNegation) {
  FormulaPtr nnf = ToNnf(MustParse("!(exists x . S(x))"));
  EXPECT_EQ(nnf->kind, FormulaKind::kForAll);
  EXPECT_EQ(nnf->children[0]->ToString(), "!(S(x))");

  nnf = ToNnf(MustParse("!(forall x . S(x))"));
  EXPECT_EQ(nnf->kind, FormulaKind::kExists);
}

TEST(SubstituteVariableTest, RenamesFreeOccurrences) {
  FormulaPtr formula = MustParse("S(x) & (exists x . T(x)) & E2(x, y)");
  FormulaPtr renamed = SubstituteVariable(formula, "x", "w");
  EXPECT_EQ(renamed->ToString(),
            "(S(w) & exists x . (T(x)) & E2(w, y))");
}

TEST(QfNnfToDnfTest, AtomIsSingleTerm) {
  FormulaPtr formula = ToNnf(MustParse("S(x)"));
  auto dnf = QfNnfToDnf(formula);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_EQ((*dnf)[0].size(), 1u);
  EXPECT_TRUE((*dnf)[0][0].positive);
}

TEST(QfNnfToDnfTest, DistributesAndOverOr) {
  // (a | b) & (c | d) -> 4 terms.
  FormulaPtr formula =
      ToNnf(MustParse("(S(#0) | S(#1)) & (T(#0) | T(#1))"));
  auto dnf = QfNnfToDnf(formula);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->size(), 4u);
  for (const SymbolicConjunct& term : *dnf) {
    EXPECT_EQ(term.size(), 2u);
  }
}

TEST(QfNnfToDnfTest, DropsContradictoryTerms) {
  FormulaPtr formula = ToNnf(MustParse("S(#0) & !S(#0)"));
  auto dnf = QfNnfToDnf(formula);
  ASSERT_TRUE(dnf.ok());
  EXPECT_TRUE(dnf->empty());
}

TEST(QfNnfToDnfTest, MergesDuplicateLiterals) {
  FormulaPtr formula = ToNnf(MustParse("S(#0) & S(#0)"));
  auto dnf = QfNnfToDnf(formula);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_EQ((*dnf)[0].size(), 1u);
}

TEST(QfNnfToDnfTest, TrueGivesEmptyConjunct) {
  auto dnf = QfNnfToDnf(ToNnf(MustParse("true")));
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_TRUE((*dnf)[0].empty());
}

TEST(QfNnfToDnfTest, FalseGivesNoTerms) {
  auto dnf = QfNnfToDnf(ToNnf(MustParse("false")));
  ASSERT_TRUE(dnf.ok());
  EXPECT_TRUE(dnf->empty());
}

TEST(QfNnfToDnfTest, RespectsConjunctLimit) {
  // (a|b) & (c|d) & (e|f) & (g|h) = 16 terms; limit 8 must fail.
  FormulaPtr formula = ToNnf(MustParse(
      "(S(#0) | S(#1)) & (T(#0) | T(#1)) & (S(#2) | S(#3)) & "
      "(T(#2) | T(#3))"));
  EXPECT_FALSE(QfNnfToDnf(formula, 8).ok());
  EXPECT_TRUE(QfNnfToDnf(formula, 16).ok());
}

TEST(PrenexExistentialTest, HoistsNestedExistentials) {
  FormulaPtr formula =
      MustParse("(exists x . S(x)) & (exists x . T(x))");
  auto prenex = ToPrenexExistential(formula);
  ASSERT_TRUE(prenex.ok());
  EXPECT_EQ(prenex->bound_variables.size(), 2u);
  EXPECT_TRUE(prenex->free_variables.empty());
  EXPECT_TRUE(IsQuantifierFree(prenex->matrix));
  // Fresh names are distinct.
  EXPECT_NE(prenex->bound_variables[0], prenex->bound_variables[1]);
}

TEST(PrenexExistentialTest, NegatedUniversalIsExistential) {
  FormulaPtr formula = MustParse("!(forall x . S(x))");
  auto prenex = ToPrenexExistential(formula);
  ASSERT_TRUE(prenex.ok());
  EXPECT_EQ(prenex->bound_variables.size(), 1u);
}

TEST(PrenexExistentialTest, RejectsUniversal) {
  EXPECT_FALSE(ToPrenexExistential(MustParse("forall x . S(x)")).ok());
  EXPECT_FALSE(
      ToPrenexExistential(MustParse("!(exists x . S(x))")).ok());
  // Implication hides a universal under the premise? No: a -> b with
  // existential premise is !a | b; ∃ under ! becomes ∀.
  EXPECT_FALSE(
      ToPrenexExistential(MustParse("(exists x . S(x)) -> T(#0)")).ok());
}

TEST(PrenexExistentialTest, KeepsFreeVariables) {
  FormulaPtr formula = MustParse("exists y . E2(x, y)");
  auto prenex = ToPrenexExistential(formula);
  ASSERT_TRUE(prenex.ok());
  EXPECT_EQ(prenex->free_variables, (std::vector<std::string>{"x"}));
  EXPECT_EQ(prenex->bound_variables.size(), 1u);
}

TEST(PrenexExistentialTest, PrenexPreservesSemantics) {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("S", 1);
  vocabulary->AddRelation("T", 1);
  FormulaPtr formula = MustParse(
      "(exists x . S(x) & !T(x)) | !(forall y . T(y)) | "
      "(exists z . S(z) & T(z))");
  auto prenex = ToPrenexExistential(formula);
  ASSERT_TRUE(prenex.ok());
  FormulaPtr rebuilt = Exists(prenex->bound_variables, prenex->matrix);
  CompiledQuery original = std::move(CompiledQuery::Compile(formula, *vocabulary)).value();
  CompiledQuery hoisted = std::move(CompiledQuery::Compile(rebuilt, *vocabulary)).value();
  for (int mask = 0; mask < 64; ++mask) {
    Structure db(vocabulary, 3);
    for (int i = 0; i < 3; ++i) {
      db.SetFact(0, {i}, (mask >> i) & 1);
      db.SetFact(1, {i}, (mask >> (3 + i)) & 1);
    }
    EXPECT_EQ(original.Eval(db, {}), hoisted.Eval(db, {})) << mask;
  }
}

}  // namespace
}  // namespace qrel
