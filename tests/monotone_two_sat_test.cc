#include "qrel/reductions/monotone_two_sat.h"

#include <gtest/gtest.h>

#include "qrel/core/reliability.h"

namespace qrel {
namespace {

TEST(MonotoneTwoSatTest, CountSingleClause) {
  // (y0 | y1) over 2 variables: 3 of 4 assignments satisfy.
  MonotoneTwoSat formula{2, {{0, 1}}};
  EXPECT_EQ(CountSatisfyingAssignments(formula).ToInt64(), 3);
}

TEST(MonotoneTwoSatTest, CountWithFreeVariable) {
  // (y0 | y1) over 3 variables: 3 * 2 = 6.
  MonotoneTwoSat formula{3, {{0, 1}}};
  EXPECT_EQ(CountSatisfyingAssignments(formula).ToInt64(), 6);
}

TEST(MonotoneTwoSatTest, CountConjunction) {
  // (y0 | y1) & (y1 | y2): assignments with y1=1 (4) plus y1=0, y0=1, y2=1
  // (1) = 5.
  MonotoneTwoSat formula{3, {{0, 1}, {1, 2}}};
  EXPECT_EQ(CountSatisfyingAssignments(formula).ToInt64(), 5);
}

TEST(MonotoneTwoSatTest, RandomGeneratorShape) {
  Rng rng(7);
  MonotoneTwoSat formula = RandomMonotoneTwoSat(6, 10, &rng);
  EXPECT_EQ(formula.variable_count, 6);
  EXPECT_EQ(formula.clauses.size(), 10u);
  for (const auto& [y, z] : formula.clauses) {
    EXPECT_NE(y, z);
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 6);
    EXPECT_GE(z, 0);
    EXPECT_LT(z, 6);
  }
}

TEST(Prop32ReductionTest, DatabaseModelsTheFormula) {
  MonotoneTwoSat formula{3, {{0, 1}, {1, 2}}};
  Prop32Instance instance = BuildProp32Instance(formula);
  const UnreliableDatabase& db = instance.database;
  EXPECT_EQ(db.universe_size(), 2 + 3);
  int l = *db.vocabulary().FindRelation("L");
  int r = *db.vocabulary().FindRelation("R");
  int s = *db.vocabulary().FindRelation("S");
  // Clause 0 = (y0, y1): L(0, 2), R(0, 3).
  EXPECT_TRUE(db.observed().AtomTrue(l, {0, 2}));
  EXPECT_TRUE(db.observed().AtomTrue(r, {0, 3}));
  EXPECT_TRUE(db.observed().AtomTrue(l, {1, 3}));
  EXPECT_TRUE(db.observed().AtomTrue(r, {1, 4}));
  // S holds every variable element with error 1/2.
  for (Element v = 2; v < 5; ++v) {
    EXPECT_TRUE(db.observed().AtomTrue(s, {v}));
    EXPECT_EQ(db.model().ErrorOf(GroundAtom{s, {v}}), Rational(1, 2));
  }
  // Exactly m uncertain atoms: the probability space is the uniform
  // distribution over assignments.
  EXPECT_EQ(db.UncertainEntries().size(), 3u);
}

TEST(Prop32ReductionTest, ObservedDatabaseSatisfiesPsi) {
  MonotoneTwoSat formula{2, {{0, 1}}};
  Prop32Instance instance = BuildProp32Instance(formula);
  StatusOr<ReliabilityReport> report =
      ExactReliability(instance.query, instance.database);
  ASSERT_TRUE(report.ok());
  // 𝔄 ⊨ ψ: the all-false assignment falsifies every clause.
  // (Checked indirectly: H < 1 and the identity below.)
}

TEST(Prop32ReductionTest, ExpectedErrorEncodesModelCount) {
  // The heart of Proposition 3.2: H_ψ · 2^m = #SAT(φ).
  const MonotoneTwoSat formulas[] = {
      {2, {{0, 1}}},
      {3, {{0, 1}, {1, 2}}},
      {4, {{0, 1}, {2, 3}}},
      {4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}},
      {5, {{0, 4}, {1, 3}, {2, 4}, {0, 1}, {3, 4}}},
  };
  for (const MonotoneTwoSat& formula : formulas) {
    Prop32Instance instance = BuildProp32Instance(formula);
    ReliabilityReport report =
        *ExactReliability(instance.query, instance.database);
    BigInt recovered =
        RecoverModelCount(report.expected_error, formula.variable_count);
    EXPECT_EQ(recovered, CountSatisfyingAssignments(formula))
        << "m=" << formula.variable_count;
  }
}

class Prop32PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Prop32PropertyTest, RandomFormulasRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    int variables = 2 + static_cast<int>(rng.NextBelow(8));
    int clauses = 1 + static_cast<int>(rng.NextBelow(10));
    MonotoneTwoSat formula = RandomMonotoneTwoSat(variables, clauses, &rng);
    Prop32Instance instance = BuildProp32Instance(formula);
    ReliabilityReport report =
        *ExactReliability(instance.query, instance.database);
    EXPECT_EQ(RecoverModelCount(report.expected_error, variables),
              CountSatisfyingAssignments(formula));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop32PropertyTest,
                         ::testing::Values(1u, 17u, 23u));

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

TEST(Prop32ReductionTest, StaysInsideDeRougemontRestrictedModel) {
  // The remark after Prop. 3.2: the reduction assigns positive error
  // probabilities to positive facts only, so the #P-hardness also holds
  // in de Rougemont's restricted model.
  MonotoneTwoSat formula{3, {{0, 1}, {1, 2}}};
  Prop32Instance instance = BuildProp32Instance(formula);
  EXPECT_TRUE(instance.database.IsPositiveOnlyModel());
}

}  // namespace
}  // namespace qrel
