#include "qrel/propositional/exact.h"

#include <gtest/gtest.h>

#include "qrel/util/rng.h"

namespace qrel {
namespace {

std::vector<Rational> Uniform(int n) {
  return std::vector<Rational>(static_cast<size_t>(n), Rational::Half());
}

TEST(ExactTest, EmptyFormula) {
  Dnf dnf(3);
  EXPECT_TRUE(ShannonDnfProbability(dnf, Uniform(3)).IsZero());
  EXPECT_TRUE(BruteForceDnfProbability(dnf, Uniform(3)).IsZero());
  EXPECT_TRUE(CountDnfModels(dnf).IsZero());
}

TEST(ExactTest, ConstantTrue) {
  Dnf dnf(2);
  dnf.AddTerm({});
  EXPECT_TRUE(ShannonDnfProbability(dnf, Uniform(2)).IsOne());
  EXPECT_EQ(CountDnfModels(dnf).ToInt64(), 4);
}

TEST(ExactTest, SingleLiteral) {
  Dnf dnf(1);
  dnf.AddTerm({{0, true}});
  std::vector<Rational> prob = {Rational(1, 3)};
  EXPECT_EQ(ShannonDnfProbability(dnf, prob), Rational(1, 3));
  EXPECT_EQ(CountDnfModels(dnf).ToInt64(), 1);
}

TEST(ExactTest, IndependentTermsInclusionExclusion) {
  // x0 | x1 with Pr = 1/2 each: 3/4.
  Dnf dnf(2);
  dnf.AddTerm({{0, true}});
  dnf.AddTerm({{1, true}});
  EXPECT_EQ(ShannonDnfProbability(dnf, Uniform(2)), Rational(3, 4));
  EXPECT_EQ(CountDnfModels(dnf).ToInt64(), 3);
}

TEST(ExactTest, OverlappingTerms) {
  // (x0 & x1) | (x0 & !x2): Pr = 1/4 + 1/4 - 1/8 = 3/8 at p = 1/2.
  Dnf dnf(3);
  dnf.AddTerm({{0, true}, {1, true}});
  dnf.AddTerm({{0, true}, {2, false}});
  EXPECT_EQ(ShannonDnfProbability(dnf, Uniform(3)), Rational(3, 8));
  EXPECT_EQ(CountDnfModels(dnf).ToInt64(), 3);
}

TEST(ExactTest, NonUniformProbabilities) {
  // x0 | x1 with Pr[x0] = 1/3, Pr[x1] = 1/5: 1 - (2/3)(4/5) = 7/15.
  Dnf dnf(2);
  dnf.AddTerm({{0, true}});
  dnf.AddTerm({{1, true}});
  std::vector<Rational> prob = {Rational(1, 3), Rational(1, 5)};
  EXPECT_EQ(ShannonDnfProbability(dnf, prob), Rational(7, 15));
  EXPECT_EQ(BruteForceDnfProbability(dnf, prob), Rational(7, 15));
}

TEST(ExactTest, DeterministicVariables) {
  // x0 forced true, x1 forced false: (x0 & x1) | !x1 is true.
  Dnf dnf(2);
  dnf.AddTerm({{0, true}, {1, true}});
  dnf.AddTerm({{1, false}});
  std::vector<Rational> prob = {Rational(1), Rational(0)};
  EXPECT_TRUE(ShannonDnfProbability(dnf, prob).IsOne());
}

// Property sweep: Shannon expansion agrees with brute-force enumeration on
// random formulas with random rational probabilities.
class ExactAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactAgreementTest, ShannonMatchesBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    int variables = 2 + static_cast<int>(rng.NextBelow(8));
    int terms = 1 + static_cast<int>(rng.NextBelow(8));
    Dnf dnf(variables);
    for (int t = 0; t < terms; ++t) {
      std::vector<PropLiteral> term;
      int width = 1 + static_cast<int>(rng.NextBelow(3));
      for (int l = 0; l < width; ++l) {
        term.push_back({static_cast<int>(rng.NextBelow(
                            static_cast<uint64_t>(variables))),
                        rng.NextBernoulli(0.5)});
      }
      dnf.AddTerm(std::move(term));
    }
    std::vector<Rational> prob;
    for (int v = 0; v < variables; ++v) {
      int64_t den = 1 + static_cast<int64_t>(rng.NextBelow(9));
      int64_t num = static_cast<int64_t>(rng.NextBelow(
          static_cast<uint64_t>(den) + 1));
      prob.push_back(Rational(num, den));
    }
    EXPECT_EQ(ShannonDnfProbability(dnf, prob),
              BruteForceDnfProbability(dnf, prob));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactAgreementTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

// Property: subsumption pruning never changes the exact probability.
class SubsumptionInvarianceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SubsumptionInvarianceTest, PruningPreservesProbability) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    int variables = 3 + static_cast<int>(rng.NextBelow(6));
    Dnf dnf(variables);
    int terms = 2 + static_cast<int>(rng.NextBelow(12));
    for (int t = 0; t < terms; ++t) {
      std::vector<PropLiteral> term;
      int width = 1 + static_cast<int>(rng.NextBelow(4));
      for (int l = 0; l < width; ++l) {
        term.push_back({static_cast<int>(rng.NextBelow(
                            static_cast<uint64_t>(variables))),
                        rng.NextBernoulli(0.5)});
      }
      dnf.AddTerm(std::move(term));
    }
    std::vector<Rational> prob;
    for (int v = 0; v < variables; ++v) {
      prob.push_back(Rational(1 + static_cast<int64_t>(rng.NextBelow(6)), 7));
    }
    Rational before = ShannonDnfProbability(dnf, prob);
    dnf.RemoveSubsumedTerms();
    EXPECT_EQ(ShannonDnfProbability(dnf, prob), before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsumptionInvarianceTest,
                         ::testing::Values(71u, 72u, 73u));

}  // namespace
}  // namespace qrel
