#include "qrel/core/reliability.h"

#include <memory>

#include <gtest/gtest.h>

#include "qrel/logic/parser.h"
#include "qrel/util/rng.h"

namespace qrel {
namespace {

FormulaPtr MustParse(const std::string& text) {
  StatusOr<FormulaPtr> result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

// E = {(0,1), (1,2)}, S = {0} over universe {0, 1, 2}.
UnreliableDatabase SmallDatabase() {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("S", 1);
  Structure observed(vocabulary, 3);
  observed.AddFact(0, {0, 1});
  observed.AddFact(0, {1, 2});
  observed.AddFact(1, {0});
  return UnreliableDatabase(std::move(observed));
}

TEST(ExactReliabilityTest, CertainDatabaseIsPerfectlyReliable) {
  UnreliableDatabase db = SmallDatabase();
  ReliabilityReport report =
      *ExactReliability(MustParse("exists x . S(x)"), db);
  EXPECT_TRUE(report.expected_error.IsZero());
  EXPECT_TRUE(report.reliability.IsOne());
}

TEST(ExactReliabilityTest, BooleanQueryHandComputed) {
  // ψ = S(#0); μ(S(0)) = 1/4. ψ^𝔄 = true; wrong iff flipped: H = 1/4.
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  ReliabilityReport report = *ExactReliability(MustParse("S(#0)"), db);
  EXPECT_EQ(report.arity, 0);
  EXPECT_EQ(report.expected_error, Rational(1, 4));
  EXPECT_EQ(report.reliability, Rational(3, 4));
}

TEST(ExactReliabilityTest, ExistentialHandComputed) {
  // ψ = ∃x S(x) with μ(S(0)) = 1/4, μ(S(1)) = 1/2 (S(1) observed false).
  // ψ^𝔄 = true. ψ^𝔅 false iff S(0) flipped (prob 1/4) and S(1) not
  // flipped (prob 1/2): H = 1/8.
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));
  ReliabilityReport report =
      *ExactReliability(MustParse("exists x . S(x)"), db);
  EXPECT_EQ(report.expected_error, Rational(1, 8));
  EXPECT_EQ(report.reliability, Rational(7, 8));
  EXPECT_EQ(report.work_units, 4u);
}

TEST(ExactReliabilityTest, UnaryQueryAveragesOverTuples) {
  // ψ(x) = S(x), n = 3, μ(S(0)) = 1/4: only tuple (0) can err.
  // H = 1/4, R = 1 - (1/4)/3 = 11/12.
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  ReliabilityReport report = *ExactReliability(MustParse("S(x)"), db);
  EXPECT_EQ(report.arity, 1);
  EXPECT_EQ(report.expected_error, Rational(1, 4));
  EXPECT_EQ(report.reliability, Rational(11, 12));
}

TEST(ExactReliabilityTest, BinaryQueryNormalizesByNSquared) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 2));
  ReliabilityReport report = *ExactReliability(MustParse("E(x, y)"), db);
  EXPECT_EQ(report.arity, 2);
  EXPECT_EQ(report.expected_error, Rational(1, 2));
  EXPECT_EQ(report.reliability, Rational(1) - Rational(1, 18));
}

TEST(ExactQueryProbabilityTest, MatchesHandComputation) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));
  // Pr[∃x S(x)] = 1 - Pr[S(0) flips]·Pr[S(1) stays false] = 1 - 1/8.
  EXPECT_EQ(*ExactQueryProbability(MustParse("exists x . S(x)"), db, {}),
            Rational(7, 8));
  // Free variable version.
  EXPECT_EQ(*ExactQueryProbability(MustParse("S(x)"), db, {0}),
            Rational(3, 4));
  EXPECT_EQ(*ExactQueryProbability(MustParse("S(x)"), db, {1}),
            Rational(1, 2));
  EXPECT_EQ(*ExactQueryProbability(MustParse("S(x)"), db, {2}), Rational(0));
}

TEST(ExactScaledProbabilityTest, GTimesProbabilityIsInteger) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(3, 7));
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 6));
  ScaledProbability scaled =
      *ExactScaledProbability(MustParse("exists x . S(x)"), db, {});
  EXPECT_EQ(scaled.g.ToInt64(), 4 * 7 * 6);
  // Cross-check: probability recovered from the integer equals the exact
  // probability.
  Rational probability =
      *ExactQueryProbability(MustParse("exists x . S(x)"), db, {});
  EXPECT_EQ(Rational(scaled.g_times_probability, scaled.g), probability);
}

TEST(QuantifierFreeReliabilityTest, RejectsQuantifiedQueries) {
  UnreliableDatabase db = SmallDatabase();
  EXPECT_FALSE(QuantifierFreeReliability(MustParse("exists x . S(x)"), db)
                   .ok());
}

TEST(QuantifierFreeReliabilityTest, HandComputedBoolean) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  ReliabilityReport report =
      *QuantifierFreeReliability(MustParse("S(#0)"), db);
  EXPECT_EQ(report.expected_error, Rational(1, 4));
  EXPECT_EQ(report.reliability, Rational(3, 4));
}

TEST(QuantifierFreeReliabilityTest, SharedAtomAcrossLiterals) {
  // ψ = S(#0) | !S(#0) is a tautology: always reliable even though the
  // atom is uncertain.
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 3));
  ReliabilityReport report =
      *QuantifierFreeReliability(MustParse("S(#0) | !S(#0)"), db);
  EXPECT_TRUE(report.expected_error.IsZero());
}

TEST(QuantifierFreeReliabilityTest, MatchesExactEnumerationOnRandomInputs) {
  // The Prop 3.1 fast path must agree exactly with world enumeration.
  Rng rng(424242);
  const std::vector<std::string> queries = {
      "S(x)",
      "E(x, y) & S(x)",
      "E(x, y) | (S(x) & !S(y))",
      "S(x) -> E(x, x)",
      "(S(x) <-> S(y)) & E(x, y)",
      "E(x, x) & x = y | S(#1)",
  };
  for (const std::string& text : queries) {
    UnreliableDatabase db = SmallDatabase();
    // Randomize errors over a handful of atoms.
    for (Element i = 0; i < 3; ++i) {
      if (rng.NextBernoulli(0.7)) {
        db.SetErrorProbability(
            GroundAtom{1, {i}},
            Rational(static_cast<int64_t>(rng.NextBelow(5)), 5));
      }
      for (Element j = 0; j < 3; ++j) {
        if (rng.NextBernoulli(0.4)) {
          db.SetErrorProbability(
              GroundAtom{0, {i, j}},
              Rational(static_cast<int64_t>(rng.NextBelow(4)), 4));
        }
      }
    }
    FormulaPtr query = MustParse(text);
    ReliabilityReport fast = *QuantifierFreeReliability(query, db);
    ReliabilityReport exact = *ExactReliability(query, db);
    EXPECT_EQ(fast.expected_error, exact.expected_error) << text;
    EXPECT_EQ(fast.reliability, exact.reliability) << text;
  }
}

TEST(QuantifierFreeReliabilityTest, WorkIsPolynomialWhileExactIsExponential) {
  // With u uncertain atoms spread over the database, the QF algorithm
  // only ever looks at the atoms of ψ(ā) (here: one per tuple), while
  // exact enumeration visits all 2^u worlds.
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("S", 1);
  const int n = 12;
  Structure observed(vocabulary, n);
  UnreliableDatabase db(std::move(observed));
  for (Element i = 0; i < n; ++i) {
    db.SetErrorProbability(GroundAtom{0, {i}}, Rational(1, 2));
  }
  FormulaPtr query = MustParse("S(x)");
  ReliabilityReport fast = *QuantifierFreeReliability(query, db);
  ReliabilityReport exact = *ExactReliability(query, db);
  EXPECT_EQ(fast.expected_error, exact.expected_error);
  EXPECT_EQ(fast.work_units, static_cast<uint64_t>(n) * 2);  // n tuples × 2
  EXPECT_EQ(exact.work_units, uint64_t{1} << n);
  // H = n/2 (each tuple errs with probability 1/2), R = 1 - 1/2.
  EXPECT_EQ(fast.reliability, Rational(1, 2));
}

TEST(ExactReliabilityTest, RefusesHugeSupports) {
  auto vocabulary = std::make_shared<Vocabulary>();
  vocabulary->AddRelation("S", 1);
  Structure observed(vocabulary, 70);
  UnreliableDatabase db(std::move(observed));
  for (Element i = 0; i < 70; ++i) {
    db.SetErrorProbability(GroundAtom{0, {i}}, Rational(1, 2));
  }
  EXPECT_FALSE(ExactReliability(MustParse("exists x . S(x)"), db).ok());
}

}  // namespace
}  // namespace qrel

namespace qrel {
namespace {

TEST(PerTupleExpectedErrorTest, QuantifierFreeBreakdownSumsToH) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 3));
  FormulaPtr query = MustParse("S(x)");
  std::vector<TupleError> breakdown = *PerTupleExpectedError(query, db);
  ASSERT_EQ(breakdown.size(), 3u);
  EXPECT_EQ(breakdown[0].tuple, (Tuple{0}));
  EXPECT_TRUE(breakdown[0].observed);
  EXPECT_EQ(breakdown[0].error, Rational(1, 4));
  EXPECT_FALSE(breakdown[1].observed);
  EXPECT_EQ(breakdown[1].error, Rational(1, 3));
  EXPECT_TRUE(breakdown[2].error.IsZero());

  Rational total;
  for (const TupleError& entry : breakdown) {
    total += entry.error;
  }
  ReliabilityReport report = *QuantifierFreeReliability(query, db);
  EXPECT_EQ(total, report.expected_error);
}

TEST(PerTupleExpectedErrorTest, QuantifiedBreakdownSumsToH) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{0, {0, 1}}, Rational(1, 3));
  db.SetErrorProbability(GroundAtom{1, {1}}, Rational(1, 2));
  FormulaPtr query = MustParse("exists y . E(x, y) & S(y)");
  std::vector<TupleError> breakdown = *PerTupleExpectedError(query, db);
  ASSERT_EQ(breakdown.size(), 3u);
  Rational total;
  for (const TupleError& entry : breakdown) {
    total += entry.error;
  }
  ReliabilityReport report = *ExactReliability(query, db);
  EXPECT_EQ(total, report.expected_error);
}

TEST(PerTupleExpectedErrorTest, BooleanQueryHasSingleRow) {
  UnreliableDatabase db = SmallDatabase();
  db.SetErrorProbability(GroundAtom{1, {0}}, Rational(1, 4));
  std::vector<TupleError> breakdown =
      *PerTupleExpectedError(MustParse("exists x . S(x)"), db);
  ASSERT_EQ(breakdown.size(), 1u);
  EXPECT_TRUE(breakdown[0].tuple.empty());
  EXPECT_EQ(breakdown[0].error,
            ExactReliability(MustParse("exists x . S(x)"), db)
                ->expected_error);
}

}  // namespace
}  // namespace qrel
