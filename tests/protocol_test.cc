// Wire protocol unit tests: framing (incremental decode, torn and
// malformed input), request/response round trips, and the wire error
// table's coverage of the full Status taxonomy.

#include "qrel/net/protocol.h"

#include <string>

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(FramingTest, EncodeDecodeRoundTrip) {
  std::string frame = EncodeFrame("QUERY\nS(x)\n");
  size_t consumed = 0;
  std::string payload;
  ASSERT_TRUE(DecodeFrame(frame, &consumed, &payload).ok());
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(payload, "QUERY\nS(x)\n");
}

TEST(FramingTest, DecodeIsIncremental) {
  std::string frame = EncodeFrame("HEALTH\n");
  // Every strict prefix decodes to "need more bytes", never to a frame
  // and never to an error: a slow sender cannot produce a torn read.
  for (size_t len = 0; len < frame.size(); ++len) {
    size_t consumed = 123;
    std::string payload;
    Status status =
        DecodeFrame(std::string_view(frame).substr(0, len), &consumed,
                    &payload);
    ASSERT_TRUE(status.ok()) << "prefix length " << len;
    EXPECT_EQ(consumed, 0u) << "prefix length " << len;
  }
}

TEST(FramingTest, DecodeLeavesTrailingBytes) {
  std::string two = EncodeFrame("HEALTH\n") + EncodeFrame("STATS\n");
  size_t consumed = 0;
  std::string payload;
  ASSERT_TRUE(DecodeFrame(two, &consumed, &payload).ok());
  EXPECT_EQ(payload, "HEALTH\n");
  std::string rest = two.substr(consumed);
  ASSERT_TRUE(DecodeFrame(rest, &consumed, &payload).ok());
  EXPECT_EQ(payload, "STATS\n");
  EXPECT_EQ(consumed, rest.size());
}

TEST(FramingTest, RejectsMalformedLength) {
  size_t consumed = 0;
  std::string payload;
  EXPECT_EQ(DecodeFrame("abc\nxxx", &consumed, &payload).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeFrame("-1\nxxx", &consumed, &payload).code(),
            StatusCode::kInvalidArgument);
}

TEST(FramingTest, RejectsOversizedFrame) {
  size_t consumed = 0;
  std::string payload;
  std::string huge = std::to_string(kMaxFramePayload + 1) + "\n";
  EXPECT_EQ(DecodeFrame(huge, &consumed, &payload).code(),
            StatusCode::kInvalidArgument);
}

TEST(FramingTest, OversizedPayloadTruncatesAtLineBoundaryInsteadOfAborting) {
  // A payload of whole lines just past the limit: the encoder must never
  // abort (the pre-fix behavior was a fatal CHECK — a remote DoS, since
  // response payloads embed client input) and must keep whole lines only,
  // so the receiver still parses a well-formed payload.
  std::string line(1000, 'v');
  line += '\n';
  std::string payload;
  while (payload.size() <= kMaxFramePayload) {
    payload += line;
  }
  std::string frame = EncodeFrame(payload);
  size_t consumed = 0;
  std::string decoded;
  ASSERT_TRUE(DecodeFrame(frame, &consumed, &decoded).ok());
  EXPECT_EQ(consumed, frame.size());
  EXPECT_LE(decoded.size(), kMaxFramePayload);
  EXPECT_EQ(decoded.size() % line.size(), 0u) << "torn line";
  EXPECT_EQ(payload.compare(0, decoded.size(), decoded), 0);
}

TEST(FramingTest, OversizedPayloadWithoutNewlinesIsCutHard) {
  std::string payload(kMaxFramePayload + 4096, 'x');
  std::string frame = EncodeFrame(payload);
  size_t consumed = 0;
  std::string decoded;
  ASSERT_TRUE(DecodeFrame(frame, &consumed, &decoded).ok());
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded.size(), kMaxFramePayload);
}

TEST(RequestTest, QueryRoundTripWithOptions) {
  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = "exists x . S(x)";
  request.options.epsilon = 0.05;
  request.options.delta = 0.01;
  request.options.seed = 42;
  request.options.fixed_samples = 128;
  request.options.timeout_ms = 2500;
  request.options.max_work = 100000;
  request.options.force_approximate = true;

  StatusOr<Request> parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, RequestVerb::kQuery);
  EXPECT_EQ(parsed->query, "exists x . S(x)");
  EXPECT_EQ(parsed->options.epsilon, 0.05);
  EXPECT_EQ(parsed->options.delta, 0.01);
  EXPECT_EQ(parsed->options.seed, 42u);
  EXPECT_EQ(parsed->options.fixed_samples, 128u);
  EXPECT_EQ(parsed->options.timeout_ms, 2500u);
  EXPECT_EQ(parsed->options.max_work, 100000u);
  EXPECT_FALSE(parsed->options.force_exact);
  EXPECT_TRUE(parsed->options.force_approximate);
}

TEST(RequestTest, BodylessVerbsRoundTrip) {
  for (RequestVerb verb : {RequestVerb::kHealth, RequestVerb::kStats,
                           RequestVerb::kDrain, RequestVerb::kDblist}) {
    Request request;
    request.verb = verb;
    StatusOr<Request> parsed = ParseRequest(SerializeRequest(request));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->verb, verb);
  }
}

TEST(RequestTest, DbAndTenantOptionsRoundTrip) {
  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = "S(x)";
  request.options.db = "orders";
  request.options.tenant = "acme";
  StatusOr<Request> parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->options.db, "orders");
  EXPECT_EQ(parsed->options.tenant, "acme");
  // Omitted on the wire when empty.
  Request plain;
  plain.verb = RequestVerb::kQuery;
  plain.query = "S(x)";
  EXPECT_EQ(SerializeRequest(plain).find("db="), std::string::npos);
  EXPECT_EQ(SerializeRequest(plain).find("tenant="), std::string::npos);
}

TEST(RequestTest, AdminVerbsRoundTrip) {
  Request attach;
  attach.verb = RequestVerb::kAttach;
  attach.target = "orders";
  attach.path = "/data/orders.udb";
  StatusOr<Request> parsed = ParseRequest(SerializeRequest(attach));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, RequestVerb::kAttach);
  EXPECT_EQ(parsed->target, "orders");
  EXPECT_EQ(parsed->path, "/data/orders.udb");

  Request detach;
  detach.verb = RequestVerb::kDetach;
  detach.target = "orders";
  parsed = ParseRequest(SerializeRequest(detach));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, RequestVerb::kDetach);
  EXPECT_EQ(parsed->target, "orders");
  EXPECT_TRUE(parsed->path.empty());

  // RELOAD with and without the optional replacement path.
  Request reload;
  reload.verb = RequestVerb::kReload;
  reload.target = "orders";
  parsed = ParseRequest(SerializeRequest(reload));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, RequestVerb::kReload);
  EXPECT_TRUE(parsed->path.empty());
  reload.path = "/data/orders_v2.udb";
  parsed = ParseRequest(SerializeRequest(reload));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->path, "/data/orders_v2.udb");
}

TEST(RequestTest, FaultVerbRoundTrip) {
  Request fault;
  fault.verb = RequestVerb::kFault;
  fault.target = "crash-after-vfs.rename:2";
  std::string wire = SerializeRequest(fault);
  StatusOr<Request> parsed = ParseRequest(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, RequestVerb::kFault);
  EXPECT_EQ(parsed->target, "crash-after-vfs.rename:2");
  // Serialize(Parse(wire)) is a fixpoint.
  EXPECT_EQ(SerializeRequest(*parsed), wire);
  // The spec line may be empty (the server rejects it, not the parser),
  // but trailing junk past the verb's line budget is malformed.
  EXPECT_EQ(ParseRequest("FAULT\nvfs.write\nextra\n").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RequestTest, IdempotencyKeyOptionRoundTrip) {
  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = "S(x)";
  request.options.idempotency_key = "req-42.retry_1";
  std::string wire = SerializeRequest(request);
  EXPECT_NE(wire.find("idem=req-42.retry_1"), std::string::npos) << wire;
  StatusOr<Request> parsed = ParseRequest(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->options.idempotency_key, "req-42.retry_1");
  EXPECT_EQ(SerializeRequest(*parsed), wire);
  // Omitted on the wire when empty.
  Request plain;
  plain.verb = RequestVerb::kQuery;
  plain.query = "S(x)";
  EXPECT_EQ(SerializeRequest(plain).find("idem="), std::string::npos);
}

TEST(RequestTest, RejectsMalformedAdminRequests) {
  // Missing name.
  EXPECT_EQ(ParseRequest("ATTACH\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("DETACH\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("RELOAD\n").status().code(),
            StatusCode::kInvalidArgument);
  // ATTACH without a path.
  EXPECT_EQ(ParseRequest("ATTACH\norders\n").status().code(),
            StatusCode::kInvalidArgument);
  // Trailing junk beyond the verb's line budget.
  EXPECT_EQ(
      ParseRequest("DETACH\norders\nextra\n").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseRequest("RELOAD\norders\n/p.udb\nextra\n").status().code(),
      StatusCode::kInvalidArgument);
}

TEST(RequestTest, RejectsUnknownVerbAndMalformedOptions) {
  EXPECT_EQ(ParseRequest("FROBNICATE\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("QUERY\n").status().code(),
            StatusCode::kInvalidArgument);  // missing query line
  EXPECT_EQ(ParseRequest("QUERY\nS(x)\nbogus_option=1\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("QUERY\nS(x)\nseed=notanumber\n").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResponseTest, OkRoundTrip) {
  Response response;
  response.fields.emplace_back("reliability", "0.75");
  response.fields.emplace_back("method", "Thm 4.2 exact world enumeration");
  StatusOr<Response> parsed = ParseResponse(SerializeResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok());
  EXPECT_EQ(parsed->Field("reliability").value_or(""), "0.75");
  EXPECT_EQ(parsed->Field("method").value_or(""),
            "Thm 4.2 exact world enumeration");
  EXPECT_FALSE(parsed->Field("missing").has_value());
}

TEST(ResponseTest, ErrorRoundTripKeepsCodeMessageAndHint) {
  Response error =
      ErrorResponse(Status::Unavailable("queue full"), /*retry_after_ms=*/250);
  StatusOr<Response> parsed = ParseResponse(SerializeResponse(error));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(parsed->status.message(), "queue full");
  EXPECT_EQ(parsed->retry_after_ms, 250u);
}

TEST(ResponseTest, ErrorResponseFlattensNewlines) {
  Response error = ErrorResponse(Status::Internal("line one\nline two"));
  StatusOr<Response> parsed = ParseResponse(SerializeResponse(error));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status.code(), StatusCode::kInternal);
  EXPECT_EQ(parsed->status.message().find('\n'), std::string::npos);
}

// Regression for the remote-DoS review finding: error messages echo
// client input (unknown verb, malformed option), so a valid max-size
// request used to inflate its own error echo past the frame limit and
// trip a fatal CHECK in EncodeFrame. The echo is now capped.
TEST(ResponseTest, ErrorEchoOfAMaxSizeRequestStaysBounded) {
  std::string verb(kMaxFramePayload - 1, 'Z');
  StatusOr<Request> parsed = ParseRequest(verb + "\n");
  ASSERT_FALSE(parsed.ok());
  std::string wire = SerializeResponse(ErrorResponse(parsed.status()));
  EXPECT_LE(wire.size(), kMaxErrorMessageBytes + 64);
  StatusOr<Response> response = ParseResponse(wire);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  // Truncation is marked, so the capped echo is recognizable as such.
  const std::string& message = response->status.message();
  EXPECT_LE(message.size(), kMaxErrorMessageBytes + 3);
  EXPECT_EQ(message.substr(message.size() - 3), "...");
}

TEST(ResponseTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseResponse("").ok());
  EXPECT_FALSE(ParseResponse("MAYBE\n").ok());
  EXPECT_FALSE(ParseResponse("ERR NOT_A_CODE\n").ok());
}

// The wire table is the one place the full Status taxonomy maps onto the
// protocol; every code must round-trip through its token, and only the
// load/deadline codes may invite a retry.
TEST(WireTableTest, CoversTheFullStatusTaxonomy) {
#define QREL_CHECK_ROW(code, token, retryable)                        \
  EXPECT_STREQ(WireErrorToken(StatusCode::code), token);              \
  EXPECT_EQ(WireErrorRetryable(StatusCode::code), retryable);         \
  EXPECT_EQ(StatusCodeFromWireToken(token), StatusCode::code);
  QREL_NET_WIRE_STATUS_TABLE(QREL_CHECK_ROW)
#undef QREL_CHECK_ROW
  EXPECT_FALSE(StatusCodeFromWireToken("NO_SUCH_TOKEN").has_value());
}

TEST(WireTableTest, OnlySheddingCodesAreRetryable) {
  int retryable = 0;
#define QREL_COUNT_RETRYABLE(code, token, is_retryable) \
  if (is_retryable) ++retryable;
  QREL_NET_WIRE_STATUS_TABLE(QREL_COUNT_RETRYABLE)
#undef QREL_COUNT_RETRYABLE
  EXPECT_EQ(retryable, 2);  // DEADLINE_EXCEEDED and UNAVAILABLE
  EXPECT_TRUE(WireErrorRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(WireErrorRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(WireErrorRetryable(StatusCode::kResourceExhausted));
}

}  // namespace
}  // namespace qrel
