#include "qrel/util/run_context.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace qrel {
namespace {

TEST(RunContextTest, UnlimitedNeverTrips) {
  RunContext ctx = RunContext::Unlimited();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ctx.Charge().ok());
  }
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_EQ(ctx.work_spent(), 1000u);
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.has_work_budget());
}

TEST(RunContextTest, WorkBudgetTripsAtTheBoundary) {
  RunContext ctx = RunContext::WithWorkBudget(5);
  // Spending exactly the budget is allowed; the unit after it is not.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ctx.Charge().ok()) << "unit " << i;
  }
  Status tripped = ctx.Charge();
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  // Once tripped, it stays tripped — but the counter keeps the true total.
  EXPECT_EQ(ctx.Charge().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.work_spent(), 7u);
  EXPECT_EQ(ctx.work_remaining(), 0u);
}

TEST(RunContextTest, BulkChargeCountsAllUnits) {
  RunContext ctx = RunContext::WithWorkBudget(100);
  EXPECT_TRUE(ctx.Charge(64).ok());
  EXPECT_EQ(ctx.work_remaining(), 36u);
  EXPECT_EQ(ctx.Charge(64).code(), StatusCode::kResourceExhausted);
}

TEST(RunContextTest, CheckFailsFastOnZeroBudget) {
  RunContext ctx = RunContext::WithWorkBudget(0);
  // Check() trips at spent >= budget so an all-zero envelope is rejected
  // before any work starts; Charge() would admit the very first unit.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
}

TEST(RunContextTest, DeadlineTrips) {
  RunContext ctx = RunContext::WithDeadline(std::chrono::milliseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  // Charge checks the clock only every kClockCheckStride units, but must
  // report the expiry within one stride.
  Status status = Status::Ok();
  for (int i = 0; i < 128 && status.ok(); ++i) {
    status = ctx.Charge();
  }
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextTest, GenerousDeadlineDoesNotTrip) {
  RunContext ctx = RunContext::WithDeadline(std::chrono::hours(1));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ctx.Charge().ok());
  }
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(RunContextTest, CancellationWinsOverEverything) {
  RunContext ctx = RunContext::WithWorkBudget(1000);
  EXPECT_TRUE(ctx.Charge().ok());
  EXPECT_FALSE(ctx.cancellation_requested());
  ctx.RequestCancellation();
  EXPECT_TRUE(ctx.cancellation_requested());
  EXPECT_EQ(ctx.Charge().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(RunContextTest, CancellationFromAnotherThread) {
  RunContext ctx;
  std::thread canceller([&ctx] {
    // Wait until the worker below has demonstrably made progress.
    while (ctx.work_spent() < 100) {
      std::this_thread::yield();
    }
    ctx.RequestCancellation();
  });
  Status status = Status::Ok();
  uint64_t spent_at_trip = 0;
  while (status.ok()) {
    status = ctx.Charge();
    if (!status.ok()) {
      spent_at_trip = ctx.work_spent();
    }
  }
  canceller.join();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_GE(spent_at_trip, 100u);
}

TEST(RunContextTest, SetWorkBudgetAppliesRetroactively) {
  RunContext ctx;
  ASSERT_TRUE(ctx.Charge(10).ok());
  ctx.SetWorkBudget(5);  // below what is already spent
  EXPECT_EQ(ctx.Charge().code(), StatusCode::kResourceExhausted);
}

TEST(RunContextTest, NullableHelpersTreatNullAsUngoverned) {
  EXPECT_TRUE(ChargeWork(nullptr).ok());
  EXPECT_TRUE(CheckRunContext(nullptr).ok());
  RunContext ctx = RunContext::WithWorkBudget(1);
  EXPECT_TRUE(ChargeWork(&ctx).ok());
  EXPECT_EQ(ChargeWork(&ctx).code(), StatusCode::kResourceExhausted);
}

TEST(RunContextTest, TripMessagesNameTheEnvelope) {
  RunContext budget = RunContext::WithWorkBudget(0);
  Status status = budget.Charge();
  EXPECT_NE(status.message().find("work budget"), std::string::npos)
      << status.ToString();
  RunContext cancelled;
  cancelled.RequestCancellation();
  EXPECT_EQ(cancelled.Check().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace qrel
