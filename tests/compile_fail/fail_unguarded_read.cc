// MUST NOT compile: reads a QREL_GUARDED_BY field without holding its
// mutex. If this ever builds clean under clang, the capability analysis
// is off and every annotation in the tree is decorative.

#include "qrel/util/mutex.h"

namespace {

class Guarded {
 public:
  int Get() { return value_; }  // no lock held: thread-safety error

 private:
  qrel::Mutex mu_;
  int value_ QREL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.Get();
}
