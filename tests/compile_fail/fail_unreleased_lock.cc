// MUST NOT compile: a manual Lock() with no Unlock() on one path — the
// capability is still held at function exit.

#include "qrel/util/mutex.h"

namespace {

qrel::Mutex g_mu;
int g_value QREL_GUARDED_BY(g_mu) = 0;

int TakeAndLeak(bool flag) {
  g_mu.Lock();
  if (flag) {
    return g_value;  // returns with g_mu held: thread-safety error
  }
  int v = g_value;
  g_mu.Unlock();
  return v;
}

}  // namespace

int main() { return TakeAndLeak(false); }
