// Positive control for the compile-fail harness: correct annotated code
// that MUST compile under -Werror=thread-safety-analysis. If this breaks,
// the fail_* cases are failing for the wrong reason (include rot, flag
// typos) and the harness proves nothing.

#include "qrel/util/mutex.h"

namespace {

class Guarded {
 public:
  void Set(int v) {
    qrel::MutexLock lock(&mu_);
    value_ = v;
  }
  int Get() {
    qrel::MutexLock lock(&mu_);
    return value_;
  }
  void SetLocked(int v) QREL_REQUIRES(mu_) { value_ = v; }
  void SetViaHelper(int v) {
    qrel::MutexLock lock(&mu_);
    SetLocked(v);
  }

 private:
  qrel::Mutex mu_;
  int value_ QREL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  g.SetViaHelper(2);
  return g.Get();
}
