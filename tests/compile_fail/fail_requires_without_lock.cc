// MUST NOT compile: calls a QREL_REQUIRES(mu) helper without holding mu.

#include "qrel/util/mutex.h"

namespace {

class Guarded {
 public:
  void SetLocked(int v) QREL_REQUIRES(mu_) { value_ = v; }
  void Set(int v) { SetLocked(v); }  // lock not held: thread-safety error

 private:
  qrel::Mutex mu_;
  int value_ QREL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  return 0;
}
