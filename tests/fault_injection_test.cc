#include "qrel/util/fault_injection.h"

#include <algorithm>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qrel/util/status.h"

namespace qrel {
namespace {

Status HitAlpha() {
  QREL_FAULT_SITE("test.alpha");
  return Status::Ok();
}

Status HitBeta() {
  QREL_FAULT_SITE("test.beta");
  return Status::Ok();
}

// The macro must compose with StatusOr-returning functions.
StatusOr<int> HitGamma() {
  QREL_FAULT_SITE("test.gamma");
  return 7;
}

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(FaultInjectionTest, UnarmedSitesPassThrough) {
  EXPECT_TRUE(HitAlpha().ok());
  EXPECT_TRUE(HitAlpha().ok());
  EXPECT_FALSE(FaultInjector::Instance().AnyArmed());
}

TEST_F(FaultInjectionTest, SiteRegistersOnFirstExecution) {
  ASSERT_TRUE(HitAlpha().ok());
  EXPECT_TRUE(Contains(FaultInjector::Instance().SiteNames(), "test.alpha"));
}

TEST_F(FaultInjectionTest, HitCountsAccumulateAndReset) {
  ASSERT_TRUE(HitAlpha().ok());
  ASSERT_TRUE(HitAlpha().ok());
  EXPECT_EQ(FaultInjector::Instance().HitCount("test.alpha"), 2u);
  FaultInjector::Instance().Reset();
  EXPECT_EQ(FaultInjector::Instance().HitCount("test.alpha"), 0u);
  EXPECT_EQ(FaultInjector::Instance().HitCount("no.such.site"), 0u);
}

TEST_F(FaultInjectionTest, FailsExactlyTheNthHit) {
  FaultInjector::Instance().Arm("test.alpha", 3);
  EXPECT_TRUE(HitAlpha().ok());
  EXPECT_TRUE(HitAlpha().ok());
  Status third = HitAlpha();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kInternal);
  EXPECT_NE(third.message().find("test.alpha"), std::string::npos);
  // One-shot: the site disarms itself after firing.
  EXPECT_TRUE(HitAlpha().ok());
  EXPECT_EQ(FaultInjector::Instance().TriggeredCount("test.alpha"), 1u);
  EXPECT_FALSE(FaultInjector::Instance().AnyArmed());
}

TEST_F(FaultInjectionTest, InjectedStatusCodeIsHonored) {
  FaultInjector::Instance().Arm("test.alpha", 1,
                                StatusCode::kResourceExhausted);
  EXPECT_EQ(HitAlpha().code(), StatusCode::kResourceExhausted);
}

TEST_F(FaultInjectionTest, PropagatesThroughStatusOr) {
  FaultInjector::Instance().Arm("test.gamma", 1);
  StatusOr<int> faulted = HitGamma();
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  EXPECT_EQ(*HitGamma(), 7);
}

TEST_F(FaultInjectionTest, ArmingAnUnknownSiteWaitsForRegistration) {
  // The site may or may not have registered yet (tests share the process
  // registry); either way the armed fault must reach it.
  FaultInjector::Instance().Arm("test.beta", 1);
  EXPECT_FALSE(HitBeta().ok());
  EXPECT_TRUE(HitBeta().ok());
}

TEST_F(FaultInjectionTest, ReArmingReplacesTheSchedule) {
  FaultInjector::Instance().Arm("test.alpha", 5);
  FaultInjector::Instance().Arm("test.alpha", 1);
  EXPECT_FALSE(HitAlpha().ok());
  EXPECT_TRUE(HitAlpha().ok());
}

TEST_F(FaultInjectionTest, EverySiteOnceFailsEachRegisteredSiteOnce) {
  ASSERT_TRUE(HitAlpha().ok());
  ASSERT_TRUE(HitBeta().ok());
  FaultInjector::Instance().ArmEverySiteOnce(StatusCode::kInternal);
  EXPECT_FALSE(HitAlpha().ok());
  EXPECT_FALSE(HitBeta().ok());
  EXPECT_TRUE(HitAlpha().ok());
  EXPECT_TRUE(HitBeta().ok());
}

TEST_F(FaultInjectionTest, ResetDisarmsPendingSchedules) {
  FaultInjector::Instance().Arm("test.alpha", 1);
  FaultInjector::Instance().Reset();
  EXPECT_TRUE(HitAlpha().ok());
}

TEST_F(FaultInjectionTest, BadAllocKindThrows) {
  FaultInjector::Instance().Arm("test.alpha", 1, StatusCode::kInternal,
                                FaultKind::kBadAlloc);
  EXPECT_THROW((void)HitAlpha(), std::bad_alloc);
  EXPECT_TRUE(HitAlpha().ok());  // still one-shot
}

TEST_F(FaultInjectionTest, SpecParsingArmsTheNamedSite) {
  ASSERT_TRUE(ArmFaultFromSpec("test.alpha:2").ok());
  EXPECT_TRUE(HitAlpha().ok());
  EXPECT_FALSE(HitAlpha().ok());
}

TEST_F(FaultInjectionTest, SpecWithoutCountMeansNextHit) {
  ASSERT_TRUE(ArmFaultFromSpec("test.alpha").ok());
  EXPECT_FALSE(HitAlpha().ok());
}

TEST_F(FaultInjectionTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(ArmFaultFromSpec("").ok());
  EXPECT_FALSE(ArmFaultFromSpec(":3").ok());
  EXPECT_FALSE(ArmFaultFromSpec("site:").ok());
  EXPECT_FALSE(ArmFaultFromSpec("site:zero").ok());
  EXPECT_FALSE(ArmFaultFromSpec("site:0").ok());
  EXPECT_FALSE(ArmFaultFromSpec("site:-1").ok());
}

}  // namespace
}  // namespace qrel
